//===- ifa/InformationFlow.cpp --------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"

#include "ifa/LocalDeps.h"

#include <algorithm>
#include <deque>
#include <iterator>
#include <unordered_map>
#include <unordered_set>

using namespace vif;

Digraph IFAResult::interfaceGraph() const {
  // Interface nodes carry the ◦ / • suffix (see Resource::name).
  return Graph.inducedSubgraph(
      [](std::string_view Name) { return hasInterfaceMark(Name); });
}

namespace {

/// Dense raw-resource-id -> graph-node-id table: one slot per (kind, id)
/// pair the program can name. Each node's name is materialized exactly
/// once, on first sighting; edges then flow as id pairs.
class FlowNodeTable {
public:
  FlowNodeTable(const ElaboratedProgram &Program, Digraph &G)
      : Program(Program), G(G),
        Stride(std::max(Program.Variables.size(), Program.Signals.size())),
        Ids(Stride * 6, NoNode) {
    // Plain resources dominate the node set; decorated ◦/• nodes are the
    // overshoot the vector absorbs.
    G.reserveNodes(Program.Variables.size() + Program.Signals.size());
  }

  Digraph::NodeId nodeOf(uint32_t Raw) {
    Digraph::NodeId &Id = Ids[(Raw >> 28) * Stride + (Raw & 0x0fffffff)];
    if (Id == NoNode)
      Id = G.addNode(Resource::fromRaw(Raw).name(Program));
    return Id;
  }

private:
  static constexpr Digraph::NodeId NoNode = ~Digraph::NodeId(0);
  const ElaboratedProgram &Program;
  Digraph &G;
  size_t Stride;
  std::vector<Digraph::NodeId> Ids;
};

} // namespace

Digraph vif::extractFlowGraph(const LabelIndexedRM &RM,
                              const ElaboratedProgram &Program) {
  Digraph G;
  FlowNodeTable Nodes(Program, G);
  std::vector<std::pair<Digraph::NodeId, Digraph::NodeId>> EdgeList;
  for (LabelId L = InitialLabel; L <= RM.maxLabel(); ++L) {
    LabelIndexedRM::RawRun Reads = RM.at(L, Access::R0);
    if (Reads.empty())
      continue;
    for (Access MA : {Access::M0, Access::M1})
      for (uint32_t M : RM.at(L, MA)) {
        Digraph::NodeId To = Nodes.nodeOf(M);
        for (uint32_t R : Reads)
          EdgeList.emplace_back(Nodes.nodeOf(R), To);
      }
  }
  G.addEdges(std::move(EdgeList));
  return G;
}

Digraph vif::extractFlowGraph(const ResourceMatrix &RM,
                              const ElaboratedProgram &Program) {
  // One pass over the ordered entry set: per label, the M0/M1 range comes
  // first and is buffered, then each R0 entry fans out. No per-label
  // vectors are allocated and no names are built per edge.
  Digraph G;
  FlowNodeTable Nodes(Program, G);
  std::vector<std::pair<Digraph::NodeId, Digraph::NodeId>> EdgeList;
  std::vector<uint32_t> Mods; // scratch, reused across labels
  for (auto It = RM.begin(), End = RM.end(); It != End;) {
    LabelId L = It->L;
    Mods.clear();
    for (; It != End && It->L == L &&
           (It->A == Access::M0 || It->A == Access::M1);
         ++It)
      Mods.push_back(It->N.raw());
    for (; It != End && It->L == L && It->A == Access::R0; ++It) {
      if (Mods.empty())
        continue;
      Digraph::NodeId From = Nodes.nodeOf(It->N.raw());
      for (uint32_t M : Mods)
        EdgeList.emplace_back(From, Nodes.nodeOf(M));
    }
    for (; It != End && It->L == L; ++It) {
      // Skip the R1 range; synchronization reads don't induce edges here.
    }
  }
  G.addEdges(std::move(EdgeList));
  return G;
}

namespace {

/// Builds the static copy graph described in the header: an edge
/// (Src -> Dst) means every (n, Src, R0) entry of RMgl induces
/// (n, Dst, R0). Adjacency is a dense vector indexed by source label;
/// duplicate detection is a hash probe on the packed edge.
struct CopyGraph {
  /// Adjacency: for each source label, the labels it feeds.
  std::vector<std::vector<LabelId>> Succs;
  std::unordered_set<uint64_t> Present;

  void addEdge(LabelId Src, LabelId Dst) {
    if (Src == Dst)
      return;
    if (!Present.insert((static_cast<uint64_t>(Src) << 32) | Dst).second)
      return;
    if (Succs.size() <= Src)
      Succs.resize(static_cast<size_t>(Src) + 1);
    Succs[Src].push_back(Dst);
  }

  bool hasSuccs(LabelId Src) const {
    return Src < Succs.size() && !Succs[Src].empty();
  }
};

} // namespace

IFAResult vif::analyzeInformationFlow(const ElaboratedProgram &Program,
                                      const ProgramCFG &CFG,
                                      const IFAOptions &Opts) {
  ResourceMatrix RMlo = computeLocalDeps(Program, CFG);
  ActiveSignalsResult Active;
  ReachingDefsResult RD;
  if (Opts.RD.ReferenceSolver) {
    Active = analyzeActiveSignalsReference(Program, CFG);
    RD = analyzeReachingDefsReference(Program, CFG, Active, Opts.RD);
  } else {
    Active = analyzeActiveSignals(Program, CFG, Opts.RD.Jobs);
    RD = analyzeReachingDefs(Program, CFG, Active, Opts.RD);
  }
  return composeInformationFlow(Program, CFG, Opts, std::move(RMlo),
                                std::move(Active), std::move(RD));
}

IFAResult vif::composeInformationFlow(const ElaboratedProgram &Program,
                                      const ProgramCFG &CFG,
                                      const IFAOptions &Opts,
                                      ResourceMatrix RMlo,
                                      ActiveSignalsResult Active,
                                      ReachingDefsResult RD) {
  IFAResult R;
  R.RMlo = std::move(RMlo);
  R.Active = std::move(Active);
  R.RD = std::move(RD);

  size_t NumLabels = CFG.numLabels();
  R.RDDagger.resize(NumLabels + 1);
  R.RDDaggerPhi.resize(NumLabels + 1);

  // Table 7: specialize the RD results to actual uses. Driven by the small
  // per-label read sets, answered straight off the dense RD representation
  // (forEachPairOf), so the full Entry sets are never materialized here.
  {
    LabelIndexedRM LoIdx(R.RMlo);
    for (LabelId L = 1; L <= NumLabels; ++L) {
      for (uint32_t Raw : LoIdx.at(L, Access::R0)) {
        Resource N = Resource::fromRaw(Raw);
        R.RD.Entry.forEachPairOf(L, N, [&](LabelId DefL) {
          R.RDDagger[L].append(DefPair{N, DefL});
        });
      }
      if (CFG.isWaitLabel(L))
        for (uint32_t Raw : LoIdx.at(L, Access::R1)) {
          Resource N = Resource::fromRaw(Raw);
          R.Active.MayEntry.forEachPairOf(L, N, [&](LabelId DefL) {
            R.RDDaggerPhi[L].append(DefPair{N, DefL});
          });
        }
    }
  }

  // [Initialization].
  R.RMgl = R.RMlo;

  bool Improved = Opts.Improved || Opts.ProgramEndOutgoing;

  // Allocate the outgoing pseudo-labels l_{n•} (Table 9) above all real
  // labels.
  LabelId NextLabel = static_cast<LabelId>(NumLabels) + 1;
  auto outgoingLabel = [&](Resource N) -> LabelId {
    auto [It, New] = R.OutgoingLabels.try_emplace(N, NextLabel);
    if (New)
      ++NextLabel;
    return It->second;
  };

  CopyGraph Copies;

  // [Present values and local variables]: copy edge l' -> l for every
  // (n', l') ∈ RD†(l) with l' a real label.
  for (LabelId L = 1; L <= NumLabels; ++L)
    for (const DefPair &P : R.RDDagger[L])
      if (P.L != InitialLabel)
        Copies.addEdge(P.L, L);

  // [Synchronized values]: for (s', l_i) ∈ RD†(l) with l_i a wait label,
  // and any cf-compatible wait l_j with (s', l'') ∈ RD†ϕ(l_j): copy edge
  // l'' -> l. Under the Hsieh-Levitan emulation (ABL-HL), definitions of
  // other processes are only visible at their final synchronization, so
  // l_j is then restricted to each foreign process's last wait.
  //
  // The RD†ϕ tables are queried per resource here and again for the
  // outgoing rules below, so build the resource-indexed view once: for
  // every resource raw id, all its (wait label l_j, def label l'') pairs.
  std::vector<LabelId> WaitLabels = CFG.allWaitLabels();
  std::unordered_map<uint32_t, std::vector<std::pair<LabelId, LabelId>>>
      PhiByResource;
  for (LabelId LJ : WaitLabels)
    for (const DefPair &Phi : R.RDDaggerPhi[LJ])
      PhiByResource[Phi.N.raw()].emplace_back(LJ, Phi.L);
  auto PhiOf = [&PhiByResource](Resource N)
      -> const std::vector<std::pair<LabelId, LabelId>> * {
    auto It = PhiByResource.find(N.raw());
    return It == PhiByResource.end() ? nullptr : &It->second;
  };

  std::vector<LabelId> LastWaitOf(CFG.processes().size(), InitialLabel);
  for (const ProcessCFG &Proc : CFG.processes())
    if (!Proc.WaitLabels.empty())
      LastWaitOf[Proc.ProcessId] = Proc.WaitLabels.back();
  for (LabelId L = 1; L <= NumLabels; ++L)
    for (const DefPair &P : R.RDDagger[L]) {
      if (P.L == InitialLabel || !CFG.isWaitLabel(P.L))
        continue;
      const auto *Phis = PhiOf(P.N);
      if (!Phis)
        continue;
      for (const auto &[LJ, PhiL] : *Phis) {
        if (!CFG.cfCompatible(P.L, LJ))
          continue;
        if (Opts.RD.HsiehLevitanCrossFlow &&
            CFG.processOf(LJ) != CFG.processOf(P.L) &&
            LJ != LastWaitOf[CFG.processOf(LJ)])
          continue;
        Copies.addEdge(PhiL, L);
      }
    }

  if (Improved) {
    // [Initial values]: (n, ?) ∈ RD†(l) ⟹ (n◦, l, R0).
    for (LabelId L = 1; L <= NumLabels; ++L)
      for (const DefPair &P : R.RDDagger[L])
        if (P.L == InitialLabel)
          R.RMgl.insert(P.N.incoming(), L, Access::R0);

    // [Incoming values]: a present value defined at a synchronization point
    // may have been driven by the environment — for input ports, which are
    // exactly the signals the π process feeds (n, l') ∈ RD†(l), l' ∈ WS
    // ⟹ (n◦, l, R0).
    for (LabelId L = 1; L <= NumLabels; ++L)
      for (const DefPair &P : R.RDDagger[L]) {
        if (P.L == InitialLabel || !CFG.isWaitLabel(P.L))
          continue;
        if (P.N.isSignal() && Program.signal(P.N.id()).isInput())
          R.RMgl.insert(P.N.incoming(), L, Access::R0);
      }

    // [Outgoing values] and [Outcoming values]: per out-port n, a pseudo
    // label l_{n•} with (n•, l_{n•}, M1); every active definition of n
    // reaching any wait feeds its reads into l_{n•}.
    for (unsigned Sig : Program.outputSignals()) {
      Resource N = Resource::signal(Sig);
      LabelId LOut = outgoingLabel(N);
      R.RMgl.insert(N.outgoing(), LOut, Access::M1);
      if (const auto *Phis = PhiOf(N))
        for (const auto &[LJ, PhiL] : *Phis) {
          (void)LJ; // any wait feeds the outgoing pseudo-label
          Copies.addEdge(PhiL, LOut);
        }
    }
  }

  if (Opts.ProgramEndOutgoing) {
    // Figure 4(b) extension: the end of a non-looped process is an
    // outgoing synchronization point for all its variables and signals.
    for (const ProcessCFG &P : CFG.processes()) {
      if (Program.process(P.ProcessId).Looped)
        continue;
      PairSet EndDefs = R.RD.atProcessEnd(P);
      std::vector<Resource> All;
      for (unsigned V : P.FreeVars)
        All.push_back(Resource::variable(V));
      for (unsigned S : P.FreeSigs)
        All.push_back(Resource::signal(S));
      for (Resource N : All) {
        LabelId LOut = outgoingLabel(N);
        R.RMgl.insert(N.outgoing(), LOut,
                      N.isVariable() ? Access::M0 : Access::M1);
        auto [It, End] = EndDefs.equalRange(N);
        for (; It != End; ++It) {
          if (It->L == InitialLabel)
            R.RMgl.insert(N.incoming(), LOut, Access::R0);
          else
            Copies.addEdge(It->L, LOut);
        }
      }
    }
  }

  // Fixpoint: propagate R0 sets along the copy graph. Since each edge
  // copies the entire R0 set, this is a union-dataflow over labels. The
  // carrier is a design-level analogue of rd/DenseDomain: every resource
  // with an R0 entry anywhere gets a bit in one shared numbering (sorted
  // by raw id, so set-bit order is entry order), each label's row is a
  // support/BitSet over it, and a copy-edge propagation is one
  // word-parallel unionWith whose grew bit drives the worklist. The
  // sorted-vector rows (per-edge set_union) are retained behind
  // Opts.ReferenceClosure as the oracle for the differential tests.
  //
  // FIFO worklist seeded in ascending label order: copy edges mostly point
  // from textually earlier definitions to later uses, so this approximates
  // a topological sweep and each label's set is usually complete before it
  // is propagated onward (a LIFO seeded the same way pops the *last*
  // sources first and re-propagates every downstream suffix per source —
  // O(n³) worth of copying on an n-assignment chain instead of O(n²)).
  LabelId MaxLabel = NextLabel - 1;
  std::deque<LabelId> Work;
  std::vector<char> InWork(static_cast<size_t>(MaxLabel) + 1, 0);
  for (LabelId Src = 0; Src < Copies.Succs.size(); ++Src)
    if (!Copies.Succs[Src].empty()) {
      Work.push_back(Src);
      InWork[Src] = 1;
    }

  if (Opts.ReferenceClosure) {
    std::vector<std::vector<uint32_t>> R0(static_cast<size_t>(MaxLabel) + 1);
    for (const RMEntry &E : R.RMgl)
      if (E.A == Access::R0)
        // Entry order is (label, access, resource), so each R0[L] fills
        // ascending and stays a sorted set.
        R0[E.L].push_back(E.N.raw());

    std::vector<uint32_t> Merged;
    while (!Work.empty()) {
      LabelId Src = Work.front();
      Work.pop_front();
      InWork[Src] = 0;
      const std::vector<uint32_t> &SrcSet = R0[Src];
      if (SrcSet.empty())
        continue;
      for (LabelId Dst : Copies.Succs[Src]) {
        std::vector<uint32_t> &DstSet = R0[Dst];
        Merged.clear();
        std::set_union(DstSet.begin(), DstSet.end(), SrcSet.begin(),
                       SrcSet.end(), std::back_inserter(Merged));
        if (Merged.size() == DstSet.size())
          continue;
        DstSet.swap(Merged);
        if (!InWork[Dst] && Copies.hasSuccs(Dst)) {
          Work.push_back(Dst);
          InWork[Dst] = 1;
        }
      }
    }

    R.RMgl.insertR0Rows(R0);

    // Graph extraction, through the label-indexed view: the post-closure
    // RMgl is the largest matrix in the pipeline, so indexed (label,
    // access) ranges amortize best here.
    R.Graph = extractFlowGraph(LabelIndexedRM(R.RMgl), Program);
  } else {
    // The R0 universe: every resource the rows can ever mention is
    // already in some R0 entry (propagation only copies).
    std::vector<uint32_t> Universe;
    for (const RMEntry &E : R.RMgl)
      if (E.A == Access::R0)
        Universe.push_back(E.N.raw());
    std::sort(Universe.begin(), Universe.end());
    Universe.erase(std::unique(Universe.begin(), Universe.end()),
                   Universe.end());
    auto bitOf = [&Universe](uint32_t Raw) {
      return static_cast<size_t>(
          std::lower_bound(Universe.begin(), Universe.end(), Raw) -
          Universe.begin());
    };

    size_t K = Universe.size();
    std::vector<BitSet> R0(static_cast<size_t>(MaxLabel) + 1, BitSet(K));
    for (const RMEntry &E : R.RMgl)
      if (E.A == Access::R0)
        R0[E.L].set(bitOf(E.N.raw()));

    while (!Work.empty()) {
      LabelId Src = Work.front();
      Work.pop_front();
      InWork[Src] = 0;
      const BitSet &SrcSet = R0[Src];
      if (SrcSet.none())
        continue;
      for (LabelId Dst : Copies.Succs[Src]) {
        if (!R0[Dst].unionWith(SrcSet))
          continue;
        if (!InWork[Dst] && Copies.hasSuccs(Dst)) {
          Work.push_back(Dst);
          InWork[Dst] = 1;
        }
      }
    }

    // Graph extraction straight off the bitset rows: the rows carry every
    // R0 entry (they were seeded from RMgl and only grew), so the
    // pre-write-back view is only consulted for the M0/M1 runs. Node ids
    // per universe bit are cached so each read node is materialized once.
    Digraph G;
    {
      FlowNodeTable Nodes(Program, G);
      LabelIndexedRM GlIdx(R.RMgl);
      constexpr Digraph::NodeId NoNode = ~Digraph::NodeId(0);
      std::vector<Digraph::NodeId> ReadNode(K, NoNode);
      std::vector<std::pair<Digraph::NodeId, Digraph::NodeId>> EdgeList;
      for (LabelId L = InitialLabel; L <= GlIdx.maxLabel(); ++L) {
        const BitSet &Reads = R0[L];
        if (Reads.none())
          continue;
        for (Access MA : {Access::M0, Access::M1})
          for (uint32_t M : GlIdx.at(L, MA)) {
            Digraph::NodeId To = Nodes.nodeOf(M);
            Reads.forEach([&](size_t I) {
              Digraph::NodeId &From = ReadNode[I];
              if (From == NoNode)
                From = Nodes.nodeOf(Universe[I]);
              EdgeList.emplace_back(From, To);
            });
          }
      }
      G.addEdges(std::move(EdgeList));
    }
    R.Graph = std::move(G);

    // Write the fixpoint back: one linear merge of the bitset rows into
    // the dense entry buffer (post-closure RMgl is the largest matrix in
    // the pipeline).
    R.RMgl.insertR0Rows(R0, Universe);
  }

  // Ensure every resource appears as a node even when isolated, matching
  // the paper's figures which show unconnected nodes.
  for (const ElabVariable &V : Program.Variables)
    R.Graph.addNode(V.UniqueName);
  for (const ElabSignal &S : Program.Signals)
    R.Graph.addNode(S.UniqueName);
  if (Improved) {
    auto AddInterfaceNodes = [&](Resource N) {
      R.Graph.addNode(N.incoming().name(Program));
      R.Graph.addNode(N.outgoing().name(Program));
    };
    if (Opts.ProgramEndOutgoing) {
      for (const ProcessCFG &P : CFG.processes()) {
        if (Program.process(P.ProcessId).Looped)
          continue;
        for (unsigned V : P.FreeVars)
          AddInterfaceNodes(Resource::variable(V));
        for (unsigned S : P.FreeSigs)
          AddInterfaceNodes(Resource::signal(S));
      }
    }
    if (Opts.Improved) {
      for (unsigned Sig : Program.inputSignals())
        R.Graph.addNode(Resource::signal(Sig).incoming().name(Program));
      for (unsigned Sig : Program.outputSignals())
        R.Graph.addNode(Resource::signal(Sig).outgoing().name(Program));
    }
  }

  return R;
}
