//===- ifa/InformationFlow.cpp --------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"

#include "ifa/LocalDeps.h"

#include <deque>

using namespace vif;

Digraph IFAResult::interfaceGraph() const {
  return Graph.inducedSubgraph([](const std::string &Name) {
    // Interface nodes carry the ◦ / • suffix (see Resource::name).
    auto EndsWith = [&](const char *Suffix) {
      size_t N = std::string(Suffix).size();
      return Name.size() >= N && Name.compare(Name.size() - N, N, Suffix) == 0;
    };
    return EndsWith("◦") || EndsWith("•");
  });
}

Digraph vif::extractFlowGraph(const ResourceMatrix &RM,
                              const ElaboratedProgram &Program) {
  Digraph G;
  for (LabelId L : RM.labels()) {
    std::vector<Resource> Reads = RM.resourcesAt(L, Access::R0);
    if (Reads.empty())
      continue;
    std::vector<Resource> Mods = RM.resourcesAt(L, Access::M0);
    std::vector<Resource> M1 = RM.resourcesAt(L, Access::M1);
    Mods.insert(Mods.end(), M1.begin(), M1.end());
    for (Resource M : Mods)
      for (Resource R : Reads)
        G.addEdge(R.name(Program), M.name(Program));
  }
  return G;
}

namespace {

/// Builds the static copy graph described in the header: an edge
/// (Src -> Dst) means every (n, Src, R0) entry of RMgl induces
/// (n, Dst, R0).
struct CopyGraph {
  /// Adjacency: for each source label, the labels it feeds.
  std::map<LabelId, std::vector<LabelId>> Succs;

  void addEdge(LabelId Src, LabelId Dst) {
    if (Src == Dst)
      return;
    std::vector<LabelId> &V = Succs[Src];
    for (LabelId Existing : V)
      if (Existing == Dst)
        return;
    V.push_back(Dst);
  }
};

} // namespace

IFAResult vif::analyzeInformationFlow(const ElaboratedProgram &Program,
                                      const ProgramCFG &CFG,
                                      const IFAOptions &Opts) {
  IFAResult R;
  R.RMlo = computeLocalDeps(Program, CFG);
  R.Active = analyzeActiveSignals(Program, CFG);
  R.RD = analyzeReachingDefs(Program, CFG, R.Active, Opts.RD);

  size_t NumLabels = CFG.numLabels();
  R.RDDagger.resize(NumLabels + 1);
  R.RDDaggerPhi.resize(NumLabels + 1);

  // Table 7: specialize the RD results to actual uses.
  for (LabelId L = 1; L <= NumLabels; ++L) {
    for (const DefPair &P : R.RD.Entry[L])
      if (R.RMlo.contains(P.N, L, Access::R0))
        R.RDDagger[L].insert(P);
    if (CFG.isWaitLabel(L))
      for (const DefPair &P : R.Active.MayEntry[L])
        if (R.RMlo.contains(P.N, L, Access::R1))
          R.RDDaggerPhi[L].insert(P);
  }

  // [Initialization].
  R.RMgl = R.RMlo;

  bool Improved = Opts.Improved || Opts.ProgramEndOutgoing;

  // Allocate the outgoing pseudo-labels l_{n•} (Table 9) above all real
  // labels.
  LabelId NextLabel = static_cast<LabelId>(NumLabels) + 1;
  auto outgoingLabel = [&](Resource N) -> LabelId {
    auto [It, New] = R.OutgoingLabels.try_emplace(N, NextLabel);
    if (New)
      ++NextLabel;
    return It->second;
  };

  CopyGraph Copies;

  // [Present values and local variables]: copy edge l' -> l for every
  // (n', l') ∈ RD†(l) with l' a real label.
  for (LabelId L = 1; L <= NumLabels; ++L)
    for (const DefPair &P : R.RDDagger[L])
      if (P.L != InitialLabel)
        Copies.addEdge(P.L, L);

  // [Synchronized values]: for (s', l_i) ∈ RD†(l) with l_i a wait label,
  // and any cf-compatible wait l_j with (s', l'') ∈ RD†ϕ(l_j): copy edge
  // l'' -> l. Under the Hsieh-Levitan emulation (ABL-HL), definitions of
  // other processes are only visible at their final synchronization, so
  // l_j is then restricted to each foreign process's last wait.
  std::vector<LabelId> WaitLabels = CFG.allWaitLabels();
  std::vector<LabelId> LastWaitOf(CFG.processes().size(), InitialLabel);
  for (const ProcessCFG &Proc : CFG.processes())
    if (!Proc.WaitLabels.empty())
      LastWaitOf[Proc.ProcessId] = Proc.WaitLabels.back();
  for (LabelId L = 1; L <= NumLabels; ++L)
    for (const DefPair &P : R.RDDagger[L]) {
      if (P.L == InitialLabel || !CFG.isWaitLabel(P.L))
        continue;
      for (LabelId LJ : WaitLabels) {
        if (!CFG.cfCompatible(P.L, LJ))
          continue;
        if (Opts.RD.HsiehLevitanCrossFlow &&
            CFG.processOf(LJ) != CFG.processOf(P.L) &&
            LJ != LastWaitOf[CFG.processOf(LJ)])
          continue;
        for (const DefPair &Phi : R.RDDaggerPhi[LJ].pairsFor(P.N))
          Copies.addEdge(Phi.L, L);
      }
    }

  if (Improved) {
    // [Initial values]: (n, ?) ∈ RD†(l) ⟹ (n◦, l, R0).
    for (LabelId L = 1; L <= NumLabels; ++L)
      for (const DefPair &P : R.RDDagger[L])
        if (P.L == InitialLabel)
          R.RMgl.insert(P.N.incoming(), L, Access::R0);

    // [Incoming values]: a present value defined at a synchronization point
    // may have been driven by the environment — for input ports, which are
    // exactly the signals the π process feeds (n, l') ∈ RD†(l), l' ∈ WS
    // ⟹ (n◦, l, R0).
    for (LabelId L = 1; L <= NumLabels; ++L)
      for (const DefPair &P : R.RDDagger[L]) {
        if (P.L == InitialLabel || !CFG.isWaitLabel(P.L))
          continue;
        if (P.N.isSignal() && Program.signal(P.N.id()).isInput())
          R.RMgl.insert(P.N.incoming(), L, Access::R0);
      }

    // [Outgoing values] and [Outcoming values]: per out-port n, a pseudo
    // label l_{n•} with (n•, l_{n•}, M1); every active definition of n
    // reaching any wait feeds its reads into l_{n•}.
    for (unsigned Sig : Program.outputSignals()) {
      Resource N = Resource::signal(Sig);
      LabelId LOut = outgoingLabel(N);
      R.RMgl.insert(N.outgoing(), LOut, Access::M1);
      for (LabelId L : WaitLabels)
        for (const DefPair &Phi : R.RDDaggerPhi[L].pairsFor(N))
          Copies.addEdge(Phi.L, LOut);
    }
  }

  if (Opts.ProgramEndOutgoing) {
    // Figure 4(b) extension: the end of a non-looped process is an
    // outgoing synchronization point for all its variables and signals.
    for (const ProcessCFG &P : CFG.processes()) {
      if (Program.process(P.ProcessId).Looped)
        continue;
      PairSet EndDefs = R.RD.atProcessEnd(P);
      std::vector<Resource> All;
      for (unsigned V : P.FreeVars)
        All.push_back(Resource::variable(V));
      for (unsigned S : P.FreeSigs)
        All.push_back(Resource::signal(S));
      for (Resource N : All) {
        LabelId LOut = outgoingLabel(N);
        R.RMgl.insert(N.outgoing(), LOut,
                      N.isVariable() ? Access::M0 : Access::M1);
        for (const DefPair &D : EndDefs.pairsFor(N)) {
          if (D.L == InitialLabel)
            R.RMgl.insert(N.incoming(), LOut, Access::R0);
          else
            Copies.addEdge(D.L, LOut);
        }
      }
    }
  }

  // Fixpoint: propagate R0 sets along the copy graph. Since each edge
  // copies the entire R0 set, this is a union-dataflow over labels.
  std::map<LabelId, std::set<Resource>> R0;
  for (const RMEntry &E : R.RMgl)
    if (E.A == Access::R0)
      R0[E.L].insert(E.N);

  std::deque<LabelId> Work;
  std::set<LabelId> InWork;
  for (const auto &[Src, _] : Copies.Succs) {
    Work.push_back(Src);
    InWork.insert(Src);
  }
  while (!Work.empty()) {
    LabelId Src = Work.front();
    Work.pop_front();
    InWork.erase(Src);
    auto SrcIt = R0.find(Src);
    if (SrcIt == R0.end() || SrcIt->second.empty())
      continue;
    auto SuccIt = Copies.Succs.find(Src);
    if (SuccIt == Copies.Succs.end())
      continue;
    for (LabelId Dst : SuccIt->second) {
      std::set<Resource> &DstSet = R0[Dst];
      size_t Before = DstSet.size();
      DstSet.insert(SrcIt->second.begin(), SrcIt->second.end());
      if (DstSet.size() != Before && !InWork.count(Dst) &&
          Copies.Succs.count(Dst)) {
        Work.push_back(Dst);
        InWork.insert(Dst);
      }
    }
  }

  for (const auto &[L, Set] : R0)
    for (Resource N : Set)
      R.RMgl.insert(N, L, Access::R0);

  // Graph extraction.
  R.Graph = extractFlowGraph(R.RMgl, Program);

  // Ensure every resource appears as a node even when isolated, matching
  // the paper's figures which show unconnected nodes.
  for (const ElabVariable &V : Program.Variables)
    R.Graph.addNode(V.UniqueName);
  for (const ElabSignal &S : Program.Signals)
    R.Graph.addNode(S.UniqueName);
  if (Improved) {
    auto AddInterfaceNodes = [&](Resource N) {
      R.Graph.addNode(N.incoming().name(Program));
      R.Graph.addNode(N.outgoing().name(Program));
    };
    if (Opts.ProgramEndOutgoing) {
      for (const ProcessCFG &P : CFG.processes()) {
        if (Program.process(P.ProcessId).Looped)
          continue;
        for (unsigned V : P.FreeVars)
          AddInterfaceNodes(Resource::variable(V));
        for (unsigned S : P.FreeSigs)
          AddInterfaceNodes(Resource::signal(S));
      }
    }
    if (Opts.Improved) {
      for (unsigned Sig : Program.inputSignals())
        R.Graph.addNode(Resource::signal(Sig).incoming().name(Program));
      for (unsigned Sig : Program.outputSignals())
        R.Graph.addNode(Resource::signal(Sig).outgoing().name(Program));
    }
  }

  return R;
}
