//===- ifa/Policy.cpp -----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/Policy.h"

using namespace vif;

std::vector<PolicyViolation> vif::checkFlowPolicy(const Digraph &Graph,
                                                  const FlowPolicy &Policy) {
  std::vector<PolicyViolation> Violations;
  for (const FlowPolicy::Rule &R : Policy.Forbidden) {
    if (Graph.hasEdge(R.From, R.To)) {
      Violations.push_back(PolicyViolation{R.From, R.To, false});
      continue;
    }
    if (Policy.ConservativeReachability && Graph.reachable(R.From, R.To))
      Violations.push_back(PolicyViolation{R.From, R.To, true});
  }
  return Violations;
}
