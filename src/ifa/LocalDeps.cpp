//===- ifa/LocalDeps.cpp --------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/LocalDeps.h"

#include "support/Casting.h"

#include <set>

using namespace vif;

namespace {

using BlockSet = std::set<Resource>;

/// Adds the free variables and signals of \p E to \p Set.
void addExprObjects(const Expr &E, BlockSet &Set) {
  std::vector<unsigned> Vars, Sigs;
  collectExprObjects(E, Vars, Sigs);
  for (unsigned V : Vars)
    Set.insert(Resource::variable(V));
  for (unsigned S : Sigs)
    Set.insert(Resource::signal(S));
}

/// The structural rules of Table 6.
class LocalDepsBuilder {
public:
  LocalDepsBuilder(const ElaboratedProgram &Program, const ProgramCFG &CFG,
                   ResourceMatrix &RM)
      : Program(Program), CFG(CFG), RM(RM) {}

  void analyzeProcess(const ElabProcess &Proc) {
    // FS(ss_i): free signals of the whole process body, used by the
    // [Synchronization] rule.
    ProcessSigs = &CFG.process(Proc.Id).FreeSigs;
    BlockSet Empty;
    visit(*Proc.Body, Empty);
  }

private:
  void addReads(LabelId L, const Expr *E, const BlockSet &B,
                const std::vector<unsigned> &ExtraSigs = {}) {
    BlockSet Reads = B;
    if (E)
      addExprObjects(*E, Reads);
    for (unsigned Sig : ExtraSigs)
      Reads.insert(Resource::signal(Sig));
    for (Resource N : Reads)
      RM.insert(N, L, Access::R0);
  }

  void visit(const Stmt &S, const BlockSet &B) {
    switch (S.kind()) {
    case Stmt::Kind::Null:
      return; // [Skip]
    case Stmt::Kind::VarAssign: {
      // [Local Variable Assignment]
      const auto *A = cast<VarAssignStmt>(&S);
      LabelId L = CFG.labelOf(&S);
      RM.insert(Resource::fromRef(A->targetRef()), L, Access::M0);
      addReads(L, &A->value(), B);
      return;
    }
    case Stmt::Kind::SignalAssign: {
      // [Signal Assignment] — modifies the *active* value (M1); reads may
      // come from variables and present signal values but never from
      // active values.
      const auto *A = cast<SignalAssignStmt>(&S);
      LabelId L = CFG.labelOf(&S);
      RM.insert(Resource::fromRef(A->targetRef()), L, Access::M1);
      addReads(L, &A->value(), B);
      return;
    }
    case Stmt::Kind::Wait: {
      // [Synchronization]: every signal of the process has its active
      // value consumed (R1); the block set, the waited-on set S and the
      // condition are read (R0).
      const auto *W = cast<WaitStmt>(&S);
      LabelId L = CFG.labelOf(&S);
      for (unsigned Sig : *ProcessSigs)
        RM.insert(Resource::signal(Sig), L, Access::R1);
      addReads(L, W->hasUntil() ? &W->until() : nullptr, B,
               W->onSignals());
      return;
    }
    case Stmt::Kind::Compound:
      // [Composition]
      for (const StmtPtr &Sub : cast<CompoundStmt>(&S)->stmts())
        visit(*Sub, B);
      return;
    case Stmt::Kind::If: {
      // [Conditional]: branches are analyzed under B' = B ∪ FV(e) ∪ FS(e).
      const auto *I = cast<IfStmt>(&S);
      BlockSet BPrime = B;
      addExprObjects(I->cond(), BPrime);
      visit(I->thenStmt(), BPrime);
      visit(I->elseStmt(), BPrime);
      return;
    }
    case Stmt::Kind::While: {
      // [Loop]
      const auto *W = cast<WhileStmt>(&S);
      BlockSet BPrime = B;
      addExprObjects(W->cond(), BPrime);
      visit(W->body(), BPrime);
      return;
    }
    }
  }

  const ElaboratedProgram &Program;
  const ProgramCFG &CFG;
  ResourceMatrix &RM;
  const std::vector<unsigned> *ProcessSigs = nullptr;
};

} // namespace

ResourceMatrix vif::computeLocalDeps(const ElaboratedProgram &Program,
                                     const ProgramCFG &CFG) {
  ResourceMatrix RM;
  LocalDepsBuilder Builder(Program, CFG, RM);
  for (const ElabProcess &Proc : Program.Processes)
    Builder.analyzeProcess(Proc);
  return RM;
}
