//===- ifa/Kemmerer.cpp ---------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/Kemmerer.h"

#include "ifa/InformationFlow.h"
#include "ifa/LocalDeps.h"

using namespace vif;

KemmererResult vif::analyzeKemmerer(const ElaboratedProgram &Program,
                                    const ProgramCFG &CFG) {
  KemmererResult R;
  R.RMlo = computeLocalDeps(Program, CFG);
  R.LocalGraph = extractFlowGraph(R.RMlo, Program);
  // Show every resource, even isolated ones, for comparability with the
  // RD-guided analysis.
  for (const ElabVariable &V : Program.Variables)
    R.LocalGraph.addNode(V.UniqueName);
  for (const ElabSignal &S : Program.Signals)
    R.LocalGraph.addNode(S.UniqueName);
  R.Graph = R.LocalGraph.transitiveClosure();
  return R;
}
