//===- ifa/AlfpRd.cpp -----------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/AlfpRd.h"

#include "alfp/Alfp.h"

#include <map>

using namespace vif;
using alfp::Atom;
using alfp::Literal;
using alfp::RelId;
using alfp::Term;

AlfpRdResult vif::solveRdWithAlfp(const ElaboratedProgram &Program,
                                  const ProgramCFG &CFG,
                                  const ActiveSignalsResult &Active,
                                  const ReachingDefsOptions &Opts) {
  (void)Program;
  AlfpRdResult Result;
  alfp::Program P;

  // Atom maps for resources and labels.
  std::map<uint32_t, Atom> ResourceAtoms;
  std::map<Atom, Resource> AtomResources;
  std::map<LabelId, Atom> LabelAtoms;
  std::map<Atom, LabelId> AtomLabels;
  auto resource = [&](Resource N) {
    auto [It, New] = ResourceAtoms.try_emplace(
        N.raw(), P.atoms().intern("n" + std::to_string(N.raw())));
    if (New)
      AtomResources.emplace(It->second, N);
    return It->second;
  };
  auto label = [&](LabelId L) {
    auto [It, New] =
        LabelAtoms.try_emplace(L, P.atoms().intern("l" + std::to_string(L)));
    if (New)
      AtomLabels.emplace(It->second, L);
    return It->second;
  };

  RelId Flow = P.relation("flow", 2);
  RelId KillPhi = P.relation("killphi", 3);
  RelId GenPhi = P.relation("genphi", 2);
  RelId PhiEntry = P.relation("rdphi_entry", 3);
  RelId PhiExit = P.relation("rdphi_exit", 3);
  RelId KillCf = P.relation("killcf", 3);
  RelId GenCf = P.relation("gencf", 2);
  RelId CfInit = P.relation("cfinit", 3);
  RelId CfEntry = P.relation("rdcf_entry", 3);
  RelId CfExit = P.relation("rdcf_exit", 3);

  // --- Facts ---------------------------------------------------------------
  for (const ProcessCFG &Proc : CFG.processes())
    for (const auto &[From, To] : Proc.Flow)
      P.fact(Flow, {label(From), label(To)});

  ActiveKillGen PhiKG = computeActiveKillGen(CFG);
  ReachingDefsKillGen CfKG = computeReachingDefsKillGen(CFG, Active, Opts);
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    for (const DefPair &D : PhiKG.Kill[L])
      P.fact(KillPhi, {resource(D.N), label(D.L), label(L)});
    for (const DefPair &D : PhiKG.Gen[L]) {
      assert(D.L == L && "Table 4 gen pairs carry their own label");
      P.fact(GenPhi, {resource(D.N), label(L)});
    }
    for (const DefPair &D : CfKG.Kill[L])
      P.fact(KillCf, {resource(D.N), label(D.L), label(L)});
    for (const DefPair &D : CfKG.Gen[L]) {
      assert(D.L == L && "Table 5 gen pairs carry their own label");
      P.fact(GenCf, {resource(D.N), label(L)});
    }
  }
  // RDcf initial definitions {(x,?), (s,?)} at each process init label.
  for (const ProcessCFG &Proc : CFG.processes()) {
    for (unsigned V : Proc.FreeVars)
      P.fact(CfInit, {resource(Resource::variable(V)),
                      label(InitialLabel), label(Proc.Init)});
    for (unsigned S : Proc.FreeSigs)
      P.fact(CfInit, {resource(Resource::signal(S)), label(InitialLabel),
                      label(Proc.Init)});
  }

  // --- Rules ---------------------------------------------------------------
  auto V = [](uint32_t Id) { return Term::var(Id); };
  enum : uint32_t { N = 0, LD = 1, L = 2, LP = 3 };

  // rdphi_exit(N, LD, L) :- rdphi_entry(N, LD, L), !killphi(N, LD, L).
  P.clause({Literal{PhiExit, false, {V(N), V(LD), V(L)}},
            {Literal{PhiEntry, false, {V(N), V(LD), V(L)}},
             Literal{KillPhi, true, {V(N), V(LD), V(L)}}}});
  // rdphi_exit(N, L, L) :- genphi(N, L).
  P.clause({Literal{PhiExit, false, {V(N), V(L), V(L)}},
            {Literal{GenPhi, false, {V(N), V(L)}}}});
  // rdphi_entry(N, LD, L) :- flow(LP, L), rdphi_exit(N, LD, LP).
  P.clause({Literal{PhiEntry, false, {V(N), V(LD), V(L)}},
            {Literal{Flow, false, {V(LP), V(L)}},
             Literal{PhiExit, false, {V(N), V(LD), V(LP)}}}});

  // Same shape for RDcf, plus the initial definitions.
  P.clause({Literal{CfExit, false, {V(N), V(LD), V(L)}},
            {Literal{CfEntry, false, {V(N), V(LD), V(L)}},
             Literal{KillCf, true, {V(N), V(LD), V(L)}}}});
  P.clause({Literal{CfExit, false, {V(N), V(L), V(L)}},
            {Literal{GenCf, false, {V(N), V(L)}}}});
  P.clause({Literal{CfEntry, false, {V(N), V(LD), V(L)}},
            {Literal{Flow, false, {V(LP), V(L)}},
             Literal{CfExit, false, {V(N), V(LD), V(LP)}}}});
  P.clause({Literal{CfEntry, false, {V(N), V(LD), V(L)}},
            {Literal{CfInit, false, {V(N), V(LD), V(L)}}}});

  // --- Solve and decode ------------------------------------------------------
  Result.Solved = P.solve(&Result.Error);
  if (!Result.Solved)
    return Result;
  Result.DerivedTuples = P.derivedCount();
  Result.MayPhiEntry.resize(CFG.numLabels() + 1);
  Result.CfEntry.resize(CFG.numLabels() + 1);
  for (const Atom *T : P.tuples(PhiEntry))
    Result.MayPhiEntry[AtomLabels.at(T[2])].insert(
        DefPair{AtomResources.at(T[0]), AtomLabels.at(T[1])});
  for (const Atom *T : P.tuples(CfEntry))
    Result.CfEntry[AtomLabels.at(T[2])].insert(
        DefPair{AtomResources.at(T[0]), AtomLabels.at(T[1])});
  return Result;
}
