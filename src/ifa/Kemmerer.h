//===- ifa/Kemmerer.h - Kemmerer's covert-channel baseline ------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The baseline the paper compares against (Section 5.2): Kemmerer's Shared
/// Resource Matrix methodology constructs local read/modify facts per
/// operation and then closes them *flow-insensitively* — "one way to do
/// this is to take the transitive closure of the local dependencies". Both
/// methods share the same local matrix (Table 6) and the same edge
/// extraction; the only difference is the closure, which is exactly what
/// the precision experiments (Figures 3 and 5) isolate.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_KEMMERER_H
#define VIF_IFA_KEMMERER_H

#include "ifa/ResourceMatrix.h"
#include "support/Graph.h"

namespace vif {

struct KemmererResult {
  ResourceMatrix RMlo;
  Digraph LocalGraph; ///< edges before closure
  Digraph Graph;      ///< transitive closure — the method's result

  /// Heap footprint in bytes (cache byte-budget accounting).
  size_t memoryBytes() const {
    return RMlo.memoryBytes() + LocalGraph.memoryBytes() +
           Graph.memoryBytes();
  }
};

/// Runs Kemmerer's method on \p Program.
KemmererResult analyzeKemmerer(const ElaboratedProgram &Program,
                               const ProgramCFG &CFG);

} // namespace vif

#endif // VIF_IFA_KEMMERER_H
