//===- ifa/Policy.h - Covert-channel flow policies --------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Common Criteria use-case the paper motivates (Section 1): the
/// analysis result "is then followed by a further step where the designer
/// argues that all information flows are permissible — or where an
/// independent code evaluator asks for further clarification". FlowPolicy
/// captures the permissible-flow declarations; checkFlowPolicy reports every
/// graph edge the policy does not cover.
///
/// Because the information-flow graph is intentionally non-transitive, a
/// *flow* from a to b is an edge a -> b, not mere reachability. A
/// conservative auditor may still opt into reachability semantics.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_POLICY_H
#define VIF_IFA_POLICY_H

#include "support/Graph.h"

#include <string>
#include <vector>

namespace vif {

struct FlowPolicy {
  /// Flows that must not occur (e.g. key -> public output).
  struct Rule {
    std::string From;
    std::string To;
  };
  std::vector<Rule> Forbidden;

  /// When true, a forbidden pair is violated already when To is reachable
  /// from From through any path, not only by a direct flow edge.
  bool ConservativeReachability = false;
};

struct PolicyViolation {
  std::string From;
  std::string To;
  bool ViaPath = false; ///< true if flagged by reachability, not by an edge
};

/// Checks \p Graph against \p Policy; the result is empty iff the policy
/// holds.
std::vector<PolicyViolation> checkFlowPolicy(const Digraph &Graph,
                                             const FlowPolicy &Policy);

} // namespace vif

#endif // VIF_IFA_POLICY_H
