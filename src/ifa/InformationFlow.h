//===- ifa/InformationFlow.h - RD-guided IF closure (Tables 7-9) -*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second step of the Information Flow analysis (paper Section 5.2/5.3):
/// from the local Resource Matrix RMlo, compute the global matrix RMgl by a
/// closure guided by the Reaching Definitions results, then read off the
/// non-transitive information-flow graph.
///
/// Table 7 specializes the RD results to actual uses:
///   RD†(l)  = {(n, l') ∈ RDcf_entry(l)  | (n, l, R0) ∈ RMlo}
///   RD†ϕ(l) = {(s, l') ∈ RD∪ϕ_entry(l) | (s, l, R1) ∈ RMlo}, l a wait label
///
/// Table 8 closes RMgl:
///   [Initialization]       RMlo ⊆ RMgl
///   [Present values..]     (n',l') ∈ RD†(l) ∧ (n,l',R0) ∈ RMgl
///                            ⟹ (n,l,R0) ∈ RMgl
///   [Synchronized values]  (s',l_i) ∈ RD†(l) ∧ cf-compatible l_i,l_j ∧
///                          (s',l'') ∈ RD†ϕ(l_j) ∧ (s,l'',R0) ∈ RMgl
///                            ⟹ (s,l,R0) ∈ RMgl
///
/// Because the conclusions copy *all* R0 entries from a source label to a
/// target label and the premises are static, the closure reduces to a
/// reachability problem over a "copy graph" on labels; the implementation
/// exploits this (see the .cpp) while tests validate it against a naive
/// rule-by-rule fixpoint and an ALFP/Datalog encoding (ifa/AlfpClosure.h).
///
/// Table 9 ("improvement") adds incoming n◦ and outgoing n• interface
/// nodes: initial values via the (n, ?) pairs, environment inputs at
/// synchronization points for in-ports, and per-out-port pseudo-labels
/// l_{n•} collecting everything that may flow off-chip. An extra option
/// treats the end of a non-looped statement program as an outgoing
/// synchronization point — the construction the paper uses to present
/// Figure 4(b) for the sequential example (b).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_INFORMATIONFLOW_H
#define VIF_IFA_INFORMATIONFLOW_H

#include "ifa/ResourceMatrix.h"
#include "rd/ReachingDefs.h"
#include "support/Graph.h"

#include <map>

namespace vif {

struct IFAOptions {
  /// Apply Table 9 (incoming/outgoing interface nodes).
  bool Improved = false;
  /// Treat the end of each non-looped process as an outgoing
  /// synchronization point covering all its variables and signals
  /// (Figure 4(b) presentation of sequential programs). Implies Improved
  /// semantics for the ◦/• nodes it creates.
  bool ProgramEndOutgoing = false;
  /// Runs the Table 8 fixpoint over the retained sorted-vector R0 rows
  /// (per-edge set_union) instead of the word-parallel BitSet rows over
  /// the design-level resource numbering. Results are identical; the
  /// differential tests compare complete IFA results through both
  /// carriers, and the knob stays available as an escape hatch while the
  /// dense closure is young.
  bool ReferenceClosure = false;
  /// Knobs forwarded to the Reaching Definitions analysis (ablations).
  ReachingDefsOptions RD;
};

/// Everything the analysis produces, including intermediate results that
/// the tests, benches and the ALFP cross-check consume.
struct IFAResult {
  ResourceMatrix RMlo;
  ResourceMatrix RMgl;

  /// RD†(l) / RD†ϕ(l), indexed by label.
  std::vector<PairSet> RDDagger;
  std::vector<PairSet> RDDaggerPhi;

  /// The information-flow graph: an edge n1 -> n2 iff information may flow
  /// from n1 to n2. Non-transitive in general.
  Digraph Graph;

  /// Pseudo-labels l_{n•} allocated for outgoing resources (Table 9).
  std::map<Resource, LabelId> OutgoingLabels;

  /// The underlying RD results (exposed for inspection).
  ActiveSignalsResult Active;
  ReachingDefsResult RD;

  /// Restriction of Graph to the ◦/• interface nodes (paper Figure 4(b)).
  Digraph interfaceGraph() const;

  /// Heap footprint in bytes across matrices, RD† tables, the flow graph
  /// and the underlying RD results (cache byte-budget accounting).
  size_t memoryBytes() const {
    size_t Dagger = (RDDagger.capacity() + RDDaggerPhi.capacity()) *
                    sizeof(PairSet);
    for (const PairSet &S : RDDagger)
      Dagger += S.memoryBytes();
    for (const PairSet &S : RDDaggerPhi)
      Dagger += S.memoryBytes();
    return RMlo.memoryBytes() + RMgl.memoryBytes() + Dagger +
           Graph.memoryBytes() +
           OutgoingLabels.size() *
               (sizeof(std::pair<Resource, LabelId>) + 4 * sizeof(void *)) +
           Active.memoryBytes() + RD.memoryBytes();
  }
};

/// Runs the full pipeline: local dependencies, reaching definitions,
/// closure, graph extraction.
IFAResult analyzeInformationFlow(const ElaboratedProgram &Program,
                                 const ProgramCFG &CFG,
                                 const IFAOptions &Opts = IFAOptions());

/// The design-level half of the pipeline: given already-computed RMlo,
/// active-signal and reaching-definitions results (whether solved cold or
/// recomposed from per-process artifacts), runs Table 7, the Table 8
/// closure and graph extraction. analyzeInformationFlow is exactly the
/// composition of the three solvers with this function.
IFAResult composeInformationFlow(const ElaboratedProgram &Program,
                                 const ProgramCFG &CFG, const IFAOptions &Opts,
                                 ResourceMatrix RMlo,
                                 ActiveSignalsResult Active,
                                 ReachingDefsResult RD);

/// Extracts flow edges from a resource matrix: r -> m for every label with
/// both (m, l, M0/M1) and (r, l, R0). Shared by this analysis and the
/// Kemmerer baseline so that the two differ only in their closure. Works
/// id-based over a label-indexed view: node names are materialized once
/// per node, never per edge, and edges are bulk-inserted as id pairs.
Digraph extractFlowGraph(const LabelIndexedRM &RM,
                         const ElaboratedProgram &Program);
Digraph extractFlowGraph(const ResourceMatrix &RM,
                         const ElaboratedProgram &Program);

} // namespace vif

#endif // VIF_IFA_INFORMATIONFLOW_H
