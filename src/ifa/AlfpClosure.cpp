//===- ifa/AlfpClosure.cpp ------------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/AlfpClosure.h"

#include "alfp/Alfp.h"

using namespace vif;
using alfp::Atom;
using alfp::Literal;
using alfp::RelId;
using alfp::Term;

namespace {

/// Bidirectional atom maps for resources, labels and access kinds.
struct Encoding {
  alfp::Program &P;
  std::map<uint32_t, Atom> ResourceAtoms;
  std::map<Atom, Resource> AtomResources;
  std::map<LabelId, Atom> LabelAtoms;
  std::map<Atom, LabelId> AtomLabels;
  Atom AccessAtoms[4];

  explicit Encoding(alfp::Program &P) : P(P) {
    AccessAtoms[0] = P.atoms().intern("m0");
    AccessAtoms[1] = P.atoms().intern("m1");
    AccessAtoms[2] = P.atoms().intern("r0");
    AccessAtoms[3] = P.atoms().intern("r1");
  }

  Atom resource(Resource N) {
    auto [It, New] = ResourceAtoms.try_emplace(
        N.raw(), P.atoms().intern("n" + std::to_string(N.raw())));
    if (New)
      AtomResources.emplace(It->second, N);
    return It->second;
  }

  Atom label(LabelId L) {
    auto [It, New] = LabelAtoms.try_emplace(
        L, P.atoms().intern("l" + std::to_string(L)));
    if (New)
      AtomLabels.emplace(It->second, L);
    return It->second;
  }

  Atom access(Access A) { return AccessAtoms[static_cast<int>(A)]; }

  Access accessOf(Atom A) const {
    for (int I = 0; I < 4; ++I)
      if (AccessAtoms[I] == A)
        return static_cast<Access>(I);
    assert(false && "not an access atom");
    return Access::R0;
  }
};

} // namespace

AlfpClosureResult vif::closeWithAlfp(const ElaboratedProgram &Program,
                                     const ProgramCFG &CFG,
                                     const IFAResult &Native,
                                     const IFAOptions &Opts) {
  AlfpClosureResult Result;
  alfp::Program P;
  Encoding E(P);

  // Relations. Arities: rmlo/rmgl(n, l, a); rdcf/rdphi(n, lDef, lUse);
  // derived rdd/rddphi likewise; cfcomp(li, lj); unary label predicates.
  RelId RMlo = P.relation("rmlo", 3);
  RelId RMgl = P.relation("rmgl", 3);
  RelId RDcf = P.relation("rdcf", 3);
  RelId RDphi = P.relation("rdphi", 3);
  RelId RDd = P.relation("rdd", 3);
  RelId RDdphi = P.relation("rddphi", 3);
  RelId Real = P.relation("reallabel", 1);
  RelId WS = P.relation("ws", 1);
  RelId CfComp = P.relation("cfcomp", 2);
  RelId InPair = P.relation("incpair", 2);
  RelId InSig = P.relation("insig", 1);
  RelId OutSig = P.relation("outsig", 2);
  RelId EndCopy = P.relation("endcopy", 2);

  size_t NumLabels = CFG.numLabels();

  // --- Base facts ---------------------------------------------------------
  for (const RMEntry &Entry : Native.RMlo)
    P.fact(RMlo, {E.resource(Entry.N), E.label(Entry.L),
                  E.access(Entry.A)});

  for (LabelId L = 1; L <= NumLabels; ++L) {
    P.fact(Real, {E.label(L)});
    for (const DefPair &D : Native.RD.Entry[L])
      P.fact(RDcf, {E.resource(D.N), E.label(D.L), E.label(L)});
    if (CFG.isWaitLabel(L)) {
      P.fact(WS, {E.label(L)});
      for (const DefPair &D : Native.Active.MayEntry[L])
        P.fact(RDphi, {E.resource(D.N), E.label(D.L), E.label(L)});
    }
  }

  std::vector<LabelId> WaitLabels = CFG.allWaitLabels();
  for (LabelId A : WaitLabels)
    for (LabelId B : WaitLabels)
      if (CFG.cfCompatible(A, B))
        P.fact(CfComp, {E.label(A), E.label(B)});

  bool Improved = Opts.Improved || Opts.ProgramEndOutgoing;
  if (Improved) {
    // incpair(n, n◦) for every plain resource.
    for (const ElabVariable &V : Program.Variables) {
      Resource N = Resource::variable(V.Id);
      P.fact(InPair, {E.resource(N), E.resource(N.incoming())});
    }
    for (const ElabSignal &S : Program.Signals) {
      Resource N = Resource::signal(S.Id);
      P.fact(InPair, {E.resource(N), E.resource(N.incoming())});
      if (S.isInput())
        P.fact(InSig, {E.resource(N)});
    }
    // (n•, l_{n•}, M) facts for every outgoing label.
    for (const auto &[N, LOut] : Native.OutgoingLabels)
      P.fact(RMgl, {E.resource(N.outgoing()), E.label(LOut),
                    E.access(N.isVariable() ? Access::M0 : Access::M1)});
    // outsig participates in the [Outcoming values] rule, which applies to
    // genuine out ports only (end-outgoing resources flow via endcopy).
    if (Opts.Improved)
      for (unsigned Sig : Program.outputSignals()) {
        Resource N = Resource::signal(Sig);
        auto It = Native.OutgoingLabels.find(N);
        if (It != Native.OutgoingLabels.end())
          P.fact(OutSig, {E.resource(N), E.label(It->second)});
      }
  }

  if (Opts.ProgramEndOutgoing) {
    for (const ProcessCFG &Proc : CFG.processes()) {
      if (Program.process(Proc.ProcessId).Looped)
        continue;
      PairSet EndDefs = Native.RD.atProcessEnd(Proc);
      for (const DefPair &D : EndDefs) {
        auto It = Native.OutgoingLabels.find(D.N);
        if (It == Native.OutgoingLabels.end())
          continue;
        if (D.L == InitialLabel)
          P.fact(RMgl, {E.resource(D.N.incoming()), E.label(It->second),
                        E.access(Access::R0)});
        else
          P.fact(EndCopy, {E.label(D.L), E.label(It->second)});
      }
    }
  }

  // --- Rules (Tables 7-9) -------------------------------------------------
  auto V = [](uint32_t Id) { return Term::var(Id); };
  auto A = [](Atom At) { return Term::atom(At); };
  Atom R0A = E.access(Access::R0), R1A = E.access(Access::R1);
  Atom QL = E.label(InitialLabel);
  enum : uint32_t { N = 0, L = 1, LP = 2, NP = 3, LI = 4, LJ = 5, LPP = 6,
                    AV = 7, NI = 8, LO = 9 };

  // rdd(N, LDef, L) :- rmlo(N, L, r0), rdcf(N, LDef, L).       [Table 7]
  P.clause({Literal{RDd, false, {V(N), V(LP), V(L)}},
            {Literal{RMlo, false, {V(N), V(L), A(R0A)}},
             Literal{RDcf, false, {V(N), V(LP), V(L)}}}});
  // rddphi(S, LDef, L) :- rmlo(S, L, r1), rdphi(S, LDef, L).   [Table 7]
  P.clause({Literal{RDdphi, false, {V(N), V(LP), V(L)}},
            {Literal{RMlo, false, {V(N), V(L), A(R1A)}},
             Literal{RDphi, false, {V(N), V(LP), V(L)}}}});
  // rmgl(N, L, A) :- rmlo(N, L, A).                            [Init]
  P.clause({Literal{RMgl, false, {V(N), V(L), V(AV)}},
            {Literal{RMlo, false, {V(N), V(L), V(AV)}}}});
  // rmgl(N, L, r0) :- rdd(NP, LP, L), reallabel(LP), rmgl(N, LP, r0).
  P.clause({Literal{RMgl, false, {V(N), V(L), A(R0A)}},
            {Literal{RDd, false, {V(NP), V(LP), V(L)}},
             Literal{Real, false, {V(LP)}},
             Literal{RMgl, false, {V(N), V(LP), A(R0A)}}}});
  // rmgl(S, L, r0) :- rdd(SP, LI, L), ws(LI), cfcomp(LI, LJ),
  //                   rddphi(SP, LPP, LJ), rmgl(S, LPP, r0).
  P.clause({Literal{RMgl, false, {V(N), V(L), A(R0A)}},
            {Literal{RDd, false, {V(NP), V(LI), V(L)}},
             Literal{WS, false, {V(LI)}},
             Literal{CfComp, false, {V(LI), V(LJ)}},
             Literal{RDdphi, false, {V(NP), V(LPP), V(LJ)}},
             Literal{RMgl, false, {V(N), V(LPP), A(R0A)}}}});

  if (Improved) {
    // rmgl(N◦, L, r0) :- rdd(N, ?, L), incpair(N, N◦).     [Initial values]
    P.clause({Literal{RMgl, false, {V(NI), V(L), A(R0A)}},
              {Literal{RDd, false, {V(N), A(QL), V(L)}},
               Literal{InPair, false, {V(N), V(NI)}}}});
    // rmgl(N◦, L, r0) :- rdd(N, LP, L), ws(LP), insig(N),
    //                    incpair(N, N◦).                  [Incoming values]
    P.clause({Literal{RMgl, false, {V(NI), V(L), A(R0A)}},
              {Literal{RDd, false, {V(N), V(LP), V(L)}},
               Literal{WS, false, {V(LP)}},
               Literal{InSig, false, {V(N)}},
               Literal{InPair, false, {V(N), V(NI)}}}});
    // rmgl(NP, LOut, r0) :- outsig(N, LOut), rddphi(N, LDef, LW),
    //                       rmgl(NP, LDef, r0).          [Outcoming values]
    P.clause({Literal{RMgl, false, {V(NP), V(LO), A(R0A)}},
              {Literal{OutSig, false, {V(N), V(LO)}},
               Literal{RDdphi, false, {V(N), V(LP), V(LJ)}},
               Literal{RMgl, false, {V(NP), V(LP), A(R0A)}}}});
    // rmgl(NP, LOut, r0) :- endcopy(LDef, LOut), rmgl(NP, LDef, r0).
    P.clause({Literal{RMgl, false, {V(NP), V(LO), A(R0A)}},
              {Literal{EndCopy, false, {V(LP), V(LO)}},
               Literal{RMgl, false, {V(NP), V(LP), A(R0A)}}}});
  }

  // --- Solve and decode ----------------------------------------------------
  Result.Solved = P.solve(&Result.Error);
  if (!Result.Solved)
    return Result;
  Result.DerivedTuples = P.derivedCount();
  Result.Applications = P.applications();
  for (const Atom *T : P.tuples(RMgl)) {
    Resource RN = E.AtomResources.at(T[0]);
    LabelId RL = E.AtomLabels.at(T[1]);
    Result.RMgl.insert(RN, RL, E.accessOf(T[2]));
  }
  return Result;
}
