//===- ifa/LocalDeps.h - Local dependency inference (Table 6) ---*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first step of the Information Flow analysis (paper Section 5.1): the
/// structural inference system B ⊢ ss : RM that collects, per labeled block,
/// which resources may be modified (M0/M1) and read (R0/R1). The block set
/// B carries the variables and signals of enclosing if/while conditions, so
/// implicit flows through control dependences are accounted for at each
/// assignment in a branch. The result over all processes is the paper's
/// RMlo = ⋃_i RM_i with ∅ ⊢ ss_i : RM_i.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_LOCALDEPS_H
#define VIF_IFA_LOCALDEPS_H

#include "ifa/ResourceMatrix.h"

namespace vif {

/// Computes RMlo for every process of \p Program.
ResourceMatrix computeLocalDeps(const ElaboratedProgram &Program,
                                const ProgramCFG &CFG);

} // namespace vif

#endif // VIF_IFA_LOCALDEPS_H
