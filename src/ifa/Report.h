//===- ifa/Report.h - Covert-channel audit reports --------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the analysis result as the artifact a Common Criteria evaluation
/// consumes (paper Section 1): per-resource fan-in/fan-out, the interface
/// flows (which inputs reach which outputs), and the verdicts of a flow
/// policy. Plain text, deterministic, diff-friendly.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_REPORT_H
#define VIF_IFA_REPORT_H

#include "ifa/InformationFlow.h"
#include "ifa/Policy.h"

#include <iosfwd>
#include <string>

namespace vif {

struct ReportOptions {
  /// Include the full edge list (can be long).
  bool ListEdges = true;
  /// Policy to evaluate; empty policy sections are omitted.
  FlowPolicy Policy;
  /// Precomputed checkFlowPolicy(Graph, Policy) result to render. When
  /// null the report evaluates the policy itself; callers that already
  /// hold the verdicts (batch runner, exit-code logic) pass them in so
  /// the reachability scan runs once.
  const std::vector<PolicyViolation> *Violations = nullptr;
};

/// Writes the audit report for \p Result to \p OS.
void writeAuditReport(std::ostream &OS, const ElaboratedProgram &Program,
                      const IFAResult &Result,
                      const ReportOptions &Opts = ReportOptions());

/// Convenience string form.
std::string auditReport(const ElaboratedProgram &Program,
                        const IFAResult &Result,
                        const ReportOptions &Opts = ReportOptions());

} // namespace vif

#endif // VIF_IFA_REPORT_H
