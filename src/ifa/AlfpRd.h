//===- ifa/AlfpRd.h - RD equations via the ALFP engine ----------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes the *may* Reaching Definitions equations (paper Tables 4-5) as
/// ALFP clauses and solves them with the alfp engine, mirroring how the
/// paper's authors ran the analysis in the Succinct Solver:
///
///   rdphi_exit(S, LD, L) :- rdphi_entry(S, LD, L), !killphi(S, LD, L).
///   rdphi_exit(S, L, L)  :- genphi(S, L).
///   rdphi_entry(S, LD, L) :- flow(LP, L), rdphi_exit(S, LD, LP).
///
/// and the analogous clauses for RDcf, whose kill/gen facts are staged from
/// the Table 4 results (exactly the paper's "the result ... can be computed
/// before we perform the Reaching Definitions analysis for local variables
/// and signals"). A datalog least model coincides with the least fixpoint
/// of a forward may analysis, so the results must match the native worklist
/// solver pair for pair — which the tests assert.
///
/// The under-approximation RD∩ϕ uses ⋂˙ over predecessors (universal
/// quantification), which lies outside the Datalog fragment our engine
/// implements; the paper's full ALFP has ∀, so this encoding covers the
/// may half only.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_ALFPRD_H
#define VIF_IFA_ALFPRD_H

#include "rd/ReachingDefs.h"

#include <string>

namespace vif {

struct AlfpRdResult {
  bool Solved = false;
  std::string Error;
  /// Reconstructed per-label entry sets, indexed by label.
  std::vector<PairSet> MayPhiEntry; ///< RD∪ϕ entry
  std::vector<PairSet> CfEntry;     ///< RDcf entry
  size_t DerivedTuples = 0;
};

/// Solves the may-RD equations for \p Program in the ALFP engine. \p Active
/// supplies the staged Table 4 results the RDcf kill/gen facts depend on.
AlfpRdResult solveRdWithAlfp(const ElaboratedProgram &Program,
                             const ProgramCFG &CFG,
                             const ActiveSignalsResult &Active,
                             const ReachingDefsOptions &Opts = {});

} // namespace vif

#endif // VIF_IFA_ALFPRD_H
