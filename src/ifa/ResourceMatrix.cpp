//===- ifa/ResourceMatrix.cpp ---------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/ResourceMatrix.h"

#include <iterator>
#include <ostream>

using namespace vif;

const char *vif::accessName(Access A) {
  switch (A) {
  case Access::M0:
    return "M0";
  case Access::M1:
    return "M1";
  case Access::R0:
    return "R0";
  case Access::R1:
    return "R1";
  }
  return "?";
}

void ResourceMatrix::insertR0Rows(
    const std::vector<std::vector<uint32_t>> &Rows) {
  // Rows are visited in (label, resource) ascending order, which is entry
  // order for the fixed R0 access — each hinted insert lands just before
  // the hint, so the sweep is amortized O(1) per entry.
  auto Hint = Entries.begin();
  for (LabelId L = 0; L < Rows.size(); ++L)
    for (uint32_t Raw : Rows[L]) {
      RMEntry E{L, Access::R0, Resource::fromRaw(Raw)};
      while (Hint != Entries.end() && *Hint < E)
        ++Hint;
      if (Hint != Entries.end() && *Hint == E)
        continue; // already present (an RMlo entry the closure re-derived)
      Hint = Entries.insert(Hint, E);
      ++Hint;
    }
}

std::vector<Resource> ResourceMatrix::resourcesAt(LabelId L, Access A) const {
  std::vector<Resource> Result;
  auto It = Entries.lower_bound(RMEntry{L, A, Resource()});
  for (; It != Entries.end() && It->L == L && It->A == A; ++It)
    Result.push_back(It->N);
  return Result;
}

std::vector<LabelId> ResourceMatrix::labels() const {
  std::vector<LabelId> Result;
  for (const RMEntry &E : Entries)
    if (Result.empty() || Result.back() != E.L)
      Result.push_back(E.L);
  return Result;
}

const std::vector<uint32_t> LabelIndexedRM::Empty;

LabelIndexedRM::LabelIndexedRM(const ResourceMatrix &RM) {
  if (RM.empty())
    return;
  // Entries are ordered (label, access, resource), so the last entry has
  // the largest label and each slot fills in ascending resource order.
  MaxLabel = std::prev(RM.end())->L;
  Slots.resize((static_cast<size_t>(MaxLabel) + 1) * 4);
  for (const RMEntry &E : RM)
    Slots[static_cast<size_t>(E.L) * 4 + static_cast<size_t>(E.A)].push_back(
        E.N.raw());
}

void ResourceMatrix::print(std::ostream &OS,
                           const ElaboratedProgram &Program) const {
  for (const RMEntry &E : Entries)
    OS << E.N.name(Program) << "@" << E.L << ":" << accessName(E.A) << '\n';
}
