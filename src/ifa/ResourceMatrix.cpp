//===- ifa/ResourceMatrix.cpp ---------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/ResourceMatrix.h"

#include <iterator>
#include <ostream>

using namespace vif;

const char *vif::accessName(Access A) {
  switch (A) {
  case Access::M0:
    return "M0";
  case Access::M1:
    return "M1";
  case Access::R0:
    return "R0";
  case Access::R1:
    return "R1";
  }
  return "?";
}

std::vector<Resource> ResourceMatrix::resourcesAt(LabelId L, Access A) const {
  std::vector<Resource> Result;
  auto It = Entries.lower_bound(RMEntry{L, A, Resource()});
  for (; It != Entries.end() && It->L == L && It->A == A; ++It)
    Result.push_back(It->N);
  return Result;
}

std::vector<LabelId> ResourceMatrix::labels() const {
  std::vector<LabelId> Result;
  for (const RMEntry &E : Entries)
    if (Result.empty() || Result.back() != E.L)
      Result.push_back(E.L);
  return Result;
}

const std::vector<uint32_t> LabelIndexedRM::Empty;

LabelIndexedRM::LabelIndexedRM(const ResourceMatrix &RM) {
  if (RM.empty())
    return;
  // Entries are ordered (label, access, resource), so the last entry has
  // the largest label and each slot fills in ascending resource order.
  MaxLabel = std::prev(RM.end())->L;
  Slots.resize((static_cast<size_t>(MaxLabel) + 1) * 4);
  for (const RMEntry &E : RM)
    Slots[static_cast<size_t>(E.L) * 4 + static_cast<size_t>(E.A)].push_back(
        E.N.raw());
}

void ResourceMatrix::print(std::ostream &OS,
                           const ElaboratedProgram &Program) const {
  for (const RMEntry &E : Entries)
    OS << E.N.name(Program) << "@" << E.L << ":" << accessName(E.A) << '\n';
}
