//===- ifa/ResourceMatrix.cpp ---------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "ifa/ResourceMatrix.h"

#include <algorithm>
#include <iterator>
#include <ostream>

using namespace vif;

const char *vif::accessName(Access A) {
  switch (A) {
  case Access::M0:
    return "M0";
  case Access::M1:
    return "M1";
  case Access::R0:
    return "R0";
  case Access::R1:
    return "R1";
  }
  return "?";
}

bool ResourceMatrix::insert(Resource N, LabelId L, Access A) {
  RMEntry E{L, A, N};
  if (std::binary_search(Entries.begin(), Entries.end(), E))
    return false;
  if (!PendingKeys.insert(keyOf(E)).second)
    return false;
  Pending.push_back(E);
  return true;
}

bool ResourceMatrix::contains(Resource N, LabelId L, Access A) const {
  RMEntry E{L, A, N};
  return std::binary_search(Entries.begin(), Entries.end(), E) ||
         PendingKeys.count(keyOf(E)) != 0;
}

void ResourceMatrix::flush() const {
  if (Pending.empty())
    return;
  std::sort(Pending.begin(), Pending.end());
  // Pending is unique and disjoint from Entries (the PendingKeys gate), so
  // the merge is a plain two-way merge, no dedup pass needed.
  if (Entries.empty()) {
    Entries.swap(Pending);
  } else {
    std::vector<RMEntry> Merged;
    Merged.reserve(Entries.size() + Pending.size());
    std::merge(Entries.begin(), Entries.end(), Pending.begin(),
               Pending.end(), std::back_inserter(Merged));
    Entries.swap(Merged);
    Pending.clear();
  }
  PendingKeys.clear();
}

void ResourceMatrix::insertR0Rows(
    const std::vector<std::vector<uint32_t>> &Rows) {
  flush();
  // The rows stream in (label, resource) ascending order, which is entry
  // order for the fixed R0 access, so the whole batch is one set_union
  // with the present entries (duplicates — RMlo entries the closure
  // re-derived — collapse in the merge).
  std::vector<RMEntry> New;
  for (LabelId L = 0; L < Rows.size(); ++L)
    for (uint32_t Raw : Rows[L])
      New.push_back(RMEntry{L, Access::R0, Resource::fromRaw(Raw)});
  if (New.empty())
    return;
  std::vector<RMEntry> Merged;
  Merged.reserve(Entries.size() + New.size());
  std::set_union(Entries.begin(), Entries.end(), New.begin(), New.end(),
                 std::back_inserter(Merged));
  Entries.swap(Merged);
}

void ResourceMatrix::insertR0Rows(const std::vector<BitSet> &Rows,
                                  const std::vector<uint32_t> &Universe) {
  flush();
  std::vector<RMEntry> New;
  for (LabelId L = 0; L < Rows.size(); ++L)
    Rows[L].forEach([&](size_t I) {
      New.push_back(RMEntry{L, Access::R0, Resource::fromRaw(Universe[I])});
    });
  if (New.empty())
    return;
  std::vector<RMEntry> Merged;
  Merged.reserve(Entries.size() + New.size());
  std::set_union(Entries.begin(), Entries.end(), New.begin(), New.end(),
                 std::back_inserter(Merged));
  Entries.swap(Merged);
}

std::vector<Resource> ResourceMatrix::resourcesAt(LabelId L, Access A) const {
  flush();
  std::vector<Resource> Result;
  auto It = std::lower_bound(Entries.begin(), Entries.end(),
                             RMEntry{L, A, Resource()});
  for (; It != Entries.end() && It->L == L && It->A == A; ++It)
    Result.push_back(It->N);
  return Result;
}

std::vector<LabelId> ResourceMatrix::labels() const {
  flush();
  std::vector<LabelId> Result;
  for (const RMEntry &E : Entries)
    if (Result.empty() || Result.back() != E.L)
      Result.push_back(E.L);
  return Result;
}

void ResourceMatrix::print(std::ostream &OS,
                           const ElaboratedProgram &Program) const {
  flush();
  for (const RMEntry &E : Entries)
    OS << E.N.name(Program) << "@" << E.L << ":" << accessName(E.A) << '\n';
}

void ReferenceResourceMatrix::insertR0Rows(
    const std::vector<std::vector<uint32_t>> &Rows) {
  // Rows are visited in (label, resource) ascending order, which is entry
  // order for the fixed R0 access — each hinted insert lands just before
  // the hint, so the sweep is amortized O(1) per entry.
  auto Hint = Entries.begin();
  for (LabelId L = 0; L < Rows.size(); ++L)
    for (uint32_t Raw : Rows[L]) {
      RMEntry E{L, Access::R0, Resource::fromRaw(Raw)};
      while (Hint != Entries.end() && *Hint < E)
        ++Hint;
      if (Hint != Entries.end() && *Hint == E)
        continue; // already present (an RMlo entry the closure re-derived)
      Hint = Entries.insert(Hint, E);
      ++Hint;
    }
}

LabelIndexedRM::LabelIndexedRM(const ResourceMatrix &RM) {
  if (RM.empty())
    return;
  // begin() flushes, so the borrowed buffer is the final sorted storage.
  const RMEntry *First = RM.begin(), *Last = RM.end();
  Entries = First;
  MaxLabel = (Last - 1)->L;
  size_t NumSlots = (static_cast<size_t>(MaxLabel) + 1) * 4;
  SlotStart.assign(NumSlots + 1, 0);
  for (const RMEntry *E = First; E != Last; ++E)
    ++SlotStart[static_cast<size_t>(E->L) * 4 + static_cast<size_t>(E->A) +
                1];
  for (size_t S = 1; S <= NumSlots; ++S)
    SlotStart[S] += SlotStart[S - 1];
}
