//===- ifa/ResourceMatrix.h - (resource, label, access) matrices -*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Resource Matrix of paper Section 5: a set of entries (n, l, A) where
/// A ∈ {M0, M1, R0, R1}:
///
///   M0 — n (a variable or present signal value) may be modified at l
///   M1 — n's active signal value may be modified at l
///   R0 — n (variable or present value) may be read at l
///   R1 — n's active value is consumed by the synchronization at l
///
/// Entries are ordered (label, access, resource) so the closure can scan
/// all entries of one access kind at one label as a contiguous range.
///
/// The storage is dense: one flat sorted vector whose (label, access) runs
/// are the rows every consumer indexes, plus an insert buffer that is
/// merged in lazily — single inserts append, bulk R0 writes (the closure's
/// fixpoint rows, the largest matrix in the pipeline) are one linear
/// merge. The historical std::set backend is retained below as
/// ReferenceResourceMatrix, the oracle for the differential tests. The
/// lazy merge mutates on const reads, so a matrix must not be read from
/// multiple threads concurrently (per-design results never are; see the
/// LazyPairSets note in rd/DenseDomain.h).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_RESOURCEMATRIX_H
#define VIF_IFA_RESOURCEMATRIX_H

#include "rd/PairSet.h"
#include "support/BitSet.h"

#include <iosfwd>
#include <set>
#include <unordered_set>

namespace vif {

enum class Access : uint8_t { M0, M1, R0, R1 };

const char *accessName(Access A);

struct RMEntry {
  LabelId L = InitialLabel;
  Access A = Access::R0;
  Resource N;

  bool operator==(const RMEntry &O) const {
    return L == O.L && A == O.A && N == O.N;
  }
  bool operator<(const RMEntry &O) const {
    if (L != O.L)
      return L < O.L;
    if (A != O.A)
      return A < O.A;
    return N < O.N;
  }
};

/// A deterministic set of Resource Matrix entries over the dense
/// sorted-run storage described in the file comment.
class ResourceMatrix {
public:
  /// Returns true if the entry was new.
  bool insert(Resource N, LabelId L, Access A);
  bool contains(Resource N, LabelId L, Access A) const;

  /// Bulk-inserts R0 entries from per-label rows of ascending raw resource
  /// ids (\p Rows[L] are the resources read at label L). The rows arrive
  /// in entry order, so the whole batch is one linear merge with the
  /// present entries — this is how the reference closure writes its
  /// fixpoint back.
  void insertR0Rows(const std::vector<std::vector<uint32_t>> &Rows);

  /// Bulk-inserts R0 entries from per-label BitSet rows over a shared
  /// resource numbering: bit I of \p Rows[L] set means (\p Universe[I],
  /// L, R0). \p Universe maps bit indices to raw resource ids, ascending
  /// — exactly the design-level numbering the Table 8 fixpoint solves
  /// over, so the bitset rows stream straight into entry order.
  void insertR0Rows(const std::vector<BitSet> &Rows,
                    const std::vector<uint32_t> &Universe);

  size_t size() const {
    flush();
    return Entries.size();
  }
  bool empty() const { return Entries.empty() && Pending.empty(); }

  /// All resources with an (n, l, A) entry, ascending.
  std::vector<Resource> resourcesAt(LabelId L, Access A) const;

  /// All labels that carry at least one entry, ascending.
  std::vector<LabelId> labels() const;

  /// Flat iteration in (label, access, resource) order.
  const RMEntry *begin() const {
    flush();
    return Entries.data();
  }
  const RMEntry *end() const {
    flush();
    return Entries.data() + Entries.size();
  }

  bool operator==(const ResourceMatrix &O) const {
    flush();
    O.flush();
    return Entries == O.Entries;
  }

  /// Debug rendering, one "name@label:access" per line, sorted.
  void print(std::ostream &OS, const ElaboratedProgram &Program) const;

  /// Heap footprint in bytes (cache byte-budget accounting); measures
  /// current allocations without flushing.
  size_t memoryBytes() const {
    return (Entries.capacity() + Pending.capacity()) * sizeof(RMEntry) +
           PendingKeys.bucket_count() * sizeof(void *) +
           PendingKeys.size() * (sizeof(uint64_t) + 2 * sizeof(void *));
  }

private:
  /// Packs an entry into one word for the pending-membership probe.
  static uint64_t keyOf(const RMEntry &E) {
    return (static_cast<uint64_t>(E.L) << 34) |
           (static_cast<uint64_t>(E.A) << 32) | E.N.raw();
  }

  /// Merges Pending (unique, disjoint from Entries) into Entries.
  void flush() const;

  /// Sorted and deduplicated (after flush).
  mutable std::vector<RMEntry> Entries;
  /// Entries inserted since the last flush, in arrival order; kept
  /// duplicate-free (and disjoint from Entries) by PendingKeys.
  mutable std::vector<RMEntry> Pending;
  mutable std::unordered_set<uint64_t> PendingKeys;
};

/// The historical std::set-backed matrix, retained as the oracle for the
/// dense backend: tests/rm_differential_test.cpp drives both through the
/// same operation streams and asserts byte-identical entry sequences.
class ReferenceResourceMatrix {
public:
  bool insert(Resource N, LabelId L, Access A) {
    return Entries.insert(RMEntry{L, A, N}).second;
  }
  bool contains(Resource N, LabelId L, Access A) const {
    return Entries.count(RMEntry{L, A, N}) != 0;
  }

  /// The hinted-sweep bulk insert of the pre-dense implementation.
  void insertR0Rows(const std::vector<std::vector<uint32_t>> &Rows);

  size_t size() const { return Entries.size(); }

  std::set<RMEntry>::const_iterator begin() const { return Entries.begin(); }
  std::set<RMEntry>::const_iterator end() const { return Entries.end(); }

private:
  std::set<RMEntry> Entries;
};

/// A zero-copy, label-indexed view over a matrix (the "RMgl view"): for
/// each (label, access) pair, the contiguous run of entries, exposed as
/// raw() resource ids. Built as CSR offsets into the matrix's flat entry
/// buffer in one pass — no per-slot copies; the closure fixpoint and the
/// flow-graph extraction index it directly instead of re-scanning per
/// label, and keep resources as raw ids so node names are materialized at
/// most once, never per edge. The view borrows the matrix's storage: it
/// is invalidated by any later mutation of the matrix.
class LabelIndexedRM {
public:
  explicit LabelIndexedRM(const ResourceMatrix &RM);

  /// The largest label with an entry (0 for an empty matrix).
  LabelId maxLabel() const { return MaxLabel; }

  /// One (label, access) run, iterated as raw resource ids, ascending.
  class RawRun {
  public:
    class iterator {
    public:
      explicit iterator(const RMEntry *P) : P(P) {}
      uint32_t operator*() const { return P->N.raw(); }
      iterator &operator++() {
        ++P;
        return *this;
      }
      bool operator!=(const iterator &O) const { return P != O.P; }
      bool operator==(const iterator &O) const { return P == O.P; }

    private:
      const RMEntry *P;
    };

    RawRun(const RMEntry *First, const RMEntry *Last)
        : First(First), Last(Last) {}
    iterator begin() const { return iterator(First); }
    iterator end() const { return iterator(Last); }
    size_t size() const { return static_cast<size_t>(Last - First); }
    bool empty() const { return First == Last; }
    uint32_t operator[](size_t I) const { return First[I].N.raw(); }

  private:
    const RMEntry *First;
    const RMEntry *Last;
  };

  /// Raw ids of resources with an (n, l, A) entry, ascending; empty when
  /// the label carries none.
  RawRun at(LabelId L, Access A) const {
    size_t Slot = static_cast<size_t>(L) * 4 + static_cast<size_t>(A);
    if (Slot + 1 >= SlotStart.size())
      return RawRun(nullptr, nullptr);
    return RawRun(Entries + SlotStart[Slot], Entries + SlotStart[Slot + 1]);
  }

private:
  const RMEntry *Entries = nullptr;
  LabelId MaxLabel = InitialLabel;
  /// SlotStart[L * 4 + A] is the offset of the slot's first entry;
  /// SlotStart.back() == total entries. Empty for an empty matrix.
  std::vector<uint32_t> SlotStart;
};

} // namespace vif

#endif // VIF_IFA_RESOURCEMATRIX_H
