//===- ifa/ResourceMatrix.h - (resource, label, access) matrices -*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Resource Matrix of paper Section 5: a set of entries (n, l, A) where
/// A ∈ {M0, M1, R0, R1}:
///
///   M0 — n (a variable or present signal value) may be modified at l
///   M1 — n's active signal value may be modified at l
///   R0 — n (variable or present value) may be read at l
///   R1 — n's active value is consumed by the synchronization at l
///
/// Entries are ordered (label, access, resource) so the closure can scan
/// all entries of one access kind at one label as a contiguous range.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_RESOURCEMATRIX_H
#define VIF_IFA_RESOURCEMATRIX_H

#include "rd/PairSet.h"

#include <iosfwd>
#include <set>

namespace vif {

enum class Access : uint8_t { M0, M1, R0, R1 };

const char *accessName(Access A);

struct RMEntry {
  LabelId L = InitialLabel;
  Access A = Access::R0;
  Resource N;

  bool operator==(const RMEntry &O) const {
    return L == O.L && A == O.A && N == O.N;
  }
  bool operator<(const RMEntry &O) const {
    if (L != O.L)
      return L < O.L;
    if (A != O.A)
      return A < O.A;
    return N < O.N;
  }
};

/// A deterministic set of Resource Matrix entries.
class ResourceMatrix {
public:
  /// Returns true if the entry was new.
  bool insert(Resource N, LabelId L, Access A) {
    return Entries.insert(RMEntry{L, A, N}).second;
  }
  bool contains(Resource N, LabelId L, Access A) const {
    return Entries.count(RMEntry{L, A, N}) != 0;
  }

  /// Bulk-inserts R0 entries from per-label rows of ascending raw resource
  /// ids (\p Rows[L] are the resources read at label L). The rows arrive
  /// in entry order, so one hinted sweep inserts them in amortized
  /// constant time each — this is how the closure writes its fixpoint
  /// back (post-closure RMgl is the largest matrix in the pipeline).
  void insertR0Rows(const std::vector<std::vector<uint32_t>> &Rows);

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// All resources with an (n, l, A) entry, ascending.
  std::vector<Resource> resourcesAt(LabelId L, Access A) const;

  /// All labels that carry at least one entry, ascending.
  std::vector<LabelId> labels() const;

  std::set<RMEntry>::const_iterator begin() const { return Entries.begin(); }
  std::set<RMEntry>::const_iterator end() const { return Entries.end(); }

  bool operator==(const ResourceMatrix &O) const {
    return Entries == O.Entries;
  }

  /// Debug rendering, one "name@label:access" per line, sorted.
  void print(std::ostream &OS, const ElaboratedProgram &Program) const;

private:
  std::set<RMEntry> Entries;
};

/// A dense, label-indexed view over a matrix (the "RMgl view"): for each
/// (label, access) pair, the raw() ids of the resources, ascending. Built
/// in one pass over the ordered entry set; the closure fixpoint and the
/// flow-graph extraction index it directly instead of re-scanning the set
/// per label, and keep resources as raw ids so node names are materialized
/// at most once, never per edge.
class LabelIndexedRM {
public:
  explicit LabelIndexedRM(const ResourceMatrix &RM);

  /// The largest label with an entry (0 for an empty matrix).
  LabelId maxLabel() const { return MaxLabel; }

  /// Raw ids of resources with an (n, l, A) entry, ascending; empty when
  /// the label carries none.
  const std::vector<uint32_t> &at(LabelId L, Access A) const {
    size_t Slot = static_cast<size_t>(L) * 4 + static_cast<size_t>(A);
    return Slot < Slots.size() ? Slots[Slot] : Empty;
  }

private:
  LabelId MaxLabel = InitialLabel;
  /// Slots[L * 4 + A], L in [0, MaxLabel].
  std::vector<std::vector<uint32_t>> Slots;
  static const std::vector<uint32_t> Empty;
};

} // namespace vif

#endif // VIF_IFA_RESOURCEMATRIX_H
