//===- ifa/AlfpClosure.h - Closure via the ALFP engine ----------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encodes the closure constraint systems of paper Tables 7-9 as an ALFP
/// (Datalog) program and solves them with the alfp engine — the same route
/// the paper's implementation took through the Succinct Solver. The
/// resulting RMgl must coincide with the native closure of
/// ifa/InformationFlow.h; tests and the ABL-SOLVER bench rely on that.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_IFA_ALFPCLOSURE_H
#define VIF_IFA_ALFPCLOSURE_H

#include "ifa/InformationFlow.h"

namespace vif {

struct AlfpClosureResult {
  bool Solved = false;
  std::string Error;
  ResourceMatrix RMgl;
  size_t DerivedTuples = 0;
  size_t Applications = 0;

  /// Heap footprint in bytes (cache byte-budget accounting).
  size_t memoryBytes() const {
    return Error.capacity() + RMgl.memoryBytes();
  }
};

/// Re-derives \p Native.RMgl through the ALFP engine. \p Opts must be the
/// options the native result was computed with.
AlfpClosureResult closeWithAlfp(const ElaboratedProgram &Program,
                                const ProgramCFG &CFG,
                                const IFAResult &Native,
                                const IFAOptions &Opts);

} // namespace vif

#endif // VIF_IFA_ALFPCLOSURE_H
