//===- stdlogic/StdLogic.cpp ----------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "stdlogic/StdLogic.h"

#include <cassert>

using namespace vif;

namespace {

constexpr uint8_t U = 0, X = 1, O0 = 2, O1 = 3, Z = 4, W = 5, L = 6, H = 7,
                  D = 8;

// IEEE 1164-1993, the `resolution_table` constant.
constexpr uint8_t ResolutionTable[9][9] = {
    //         U  X  0   1   Z  W  L  H  -
    /* U */ {U, U, U, U, U, U, U, U, U},
    /* X */ {U, X, X, X, X, X, X, X, X},
    /* 0 */ {U, X, O0, X, O0, O0, O0, O0, X},
    /* 1 */ {U, X, X, O1, O1, O1, O1, O1, X},
    /* Z */ {U, X, O0, O1, Z, W, L, H, X},
    /* W */ {U, X, O0, O1, W, W, W, W, X},
    /* L */ {U, X, O0, O1, L, W, L, W, X},
    /* H */ {U, X, O0, O1, H, W, W, H, X},
    /* - */ {U, X, X, X, X, X, X, X, X},
};

// IEEE 1164-1993 `and_table`.
constexpr uint8_t AndTable[9][9] = {
    //         U   X   0   1   Z   W   L   H   -
    /* U */ {U, U, O0, U, U, U, O0, U, U},
    /* X */ {U, X, O0, X, X, X, O0, X, X},
    /* 0 */ {O0, O0, O0, O0, O0, O0, O0, O0, O0},
    /* 1 */ {U, X, O0, O1, X, X, O0, O1, X},
    /* Z */ {U, X, O0, X, X, X, O0, X, X},
    /* W */ {U, X, O0, X, X, X, O0, X, X},
    /* L */ {O0, O0, O0, O0, O0, O0, O0, O0, O0},
    /* H */ {U, X, O0, O1, X, X, O0, O1, X},
    /* - */ {U, X, O0, X, X, X, O0, X, X},
};

// IEEE 1164-1993 `or_table`.
constexpr uint8_t OrTable[9][9] = {
    //         U   X   0   1   Z   W   L   H   -
    /* U */ {U, U, U, O1, U, U, U, O1, U},
    /* X */ {U, X, X, O1, X, X, X, O1, X},
    /* 0 */ {U, X, O0, O1, X, X, O0, O1, X},
    /* 1 */ {O1, O1, O1, O1, O1, O1, O1, O1, O1},
    /* Z */ {U, X, X, O1, X, X, X, O1, X},
    /* W */ {U, X, X, O1, X, X, X, O1, X},
    /* L */ {U, X, O0, O1, X, X, O0, O1, X},
    /* H */ {O1, O1, O1, O1, O1, O1, O1, O1, O1},
    /* - */ {U, X, X, O1, X, X, X, O1, X},
};

// IEEE 1164-1993 `xor_table`.
constexpr uint8_t XorTable[9][9] = {
    //         U  X  0   1   Z  W  L   H   -
    /* U */ {U, U, U, U, U, U, U, U, U},
    /* X */ {U, X, X, X, X, X, X, X, X},
    /* 0 */ {U, X, O0, O1, X, X, O0, O1, X},
    /* 1 */ {U, X, O1, O0, X, X, O1, O0, X},
    /* Z */ {U, X, X, X, X, X, X, X, X},
    /* W */ {U, X, X, X, X, X, X, X, X},
    /* L */ {U, X, O0, O1, X, X, O0, O1, X},
    /* H */ {U, X, O1, O0, X, X, O1, O0, X},
    /* - */ {U, X, X, X, X, X, X, X, X},
};

// IEEE 1164-1993 `not_table`.
constexpr uint8_t NotTable[9] = {U, X, O1, O0, X, X, O1, O0, X};

// IEEE 1164-1993 `cvt_to_x01` lookup.
constexpr uint8_t ToX01Table[9] = {X, X, O0, O1, X, X, O0, O1, X};

inline uint8_t idx(StdLogic V) { return static_cast<uint8_t>(V); }
inline StdLogic val(uint8_t I) {
  assert(I < NumStdLogicValues && "std_logic index out of range");
  return static_cast<StdLogic>(I);
}

} // namespace

char vif::toChar(StdLogic V) {
  static constexpr char Chars[9] = {'U', 'X', '0', '1', 'Z', 'W', 'L', 'H',
                                    '-'};
  return Chars[idx(V)];
}

std::optional<StdLogic> vif::stdLogicFromChar(char C) {
  switch (C) {
  case 'U':
    return StdLogic::U;
  case 'X':
    return StdLogic::X;
  case '0':
    return StdLogic::Zero;
  case '1':
    return StdLogic::One;
  case 'Z':
    return StdLogic::Z;
  case 'W':
    return StdLogic::W;
  case 'L':
    return StdLogic::L;
  case 'H':
    return StdLogic::H;
  case '-':
    return StdLogic::DontCare;
  default:
    return std::nullopt;
  }
}

StdLogic vif::resolve(StdLogic A, StdLogic B) {
  return val(ResolutionTable[idx(A)][idx(B)]);
}

StdLogic vif::logicNot(StdLogic A) { return val(NotTable[idx(A)]); }
StdLogic vif::logicAnd(StdLogic A, StdLogic B) {
  return val(AndTable[idx(A)][idx(B)]);
}
StdLogic vif::logicOr(StdLogic A, StdLogic B) {
  return val(OrTable[idx(A)][idx(B)]);
}
StdLogic vif::logicXor(StdLogic A, StdLogic B) {
  return val(XorTable[idx(A)][idx(B)]);
}
StdLogic vif::logicNand(StdLogic A, StdLogic B) {
  return logicNot(logicAnd(A, B));
}
StdLogic vif::logicNor(StdLogic A, StdLogic B) {
  return logicNot(logicOr(A, B));
}
StdLogic vif::logicXnor(StdLogic A, StdLogic B) {
  return logicNot(logicXor(A, B));
}

StdLogic vif::toX01(StdLogic A) { return val(ToX01Table[idx(A)]); }

bool vif::isBinary(StdLogic A) {
  StdLogic S = toX01(A);
  return S == StdLogic::Zero || S == StdLogic::One;
}

std::optional<bool> vif::toBool(StdLogic A) {
  switch (toX01(A)) {
  case StdLogic::Zero:
    return false;
  case StdLogic::One:
    return true;
  default:
    return std::nullopt;
  }
}
