//===- stdlogic/LogicVector.h - std_logic_vector values ---------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vectors of logical values, the paper's AValue = LValue* domain. A
/// LogicVector is purely positional: Bits[0] is the *leftmost* element of the
/// declared range (the MSB for `downto` ranges, and also the numeric MSB for
/// `to` ranges under the numeric_std convention). Index-to-position mapping
/// lives in ast::Type, so values never carry range bookkeeping; the paper's
/// normalization of `to` ranges becomes a pure index computation.
///
/// Arithmetic follows numeric_std's unsigned semantics: any non-binary
/// operand bit makes the whole result 'X' (after to_X01 stripping weak
/// values), otherwise the operation is performed modulo 2^width.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_STDLOGIC_LOGICVECTOR_H
#define VIF_STDLOGIC_LOGICVECTOR_H

#include "stdlogic/StdLogic.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace vif {

/// A fixed-width vector of std_logic values, leftmost element first.
class LogicVector {
public:
  LogicVector() = default;

  /// A vector of \p Width copies of \p Fill ('U' by default, matching the
  /// paper's initial stores: "All vectors has a string of 'U''s").
  explicit LogicVector(size_t Width, StdLogic Fill = StdLogic::U)
      : Bits(Width, Fill) {}

  explicit LogicVector(std::vector<StdLogic> Bits) : Bits(std::move(Bits)) {}

  /// Parses a VHDL string literal body, e.g. "01ZX"; nullopt on any
  /// character outside the nine-valued alphabet.
  static std::optional<LogicVector> fromString(const std::string &Chars);

  /// The low \p Width bits of \p Value, MSB first.
  static LogicVector fromUInt(uint64_t Value, size_t Width);

  size_t size() const { return Bits.size(); }
  bool empty() const { return Bits.empty(); }

  StdLogic bit(size_t Pos) const;
  void setBit(size_t Pos, StdLogic V);

  const std::vector<StdLogic> &bits() const { return Bits; }

  /// The contiguous sub-vector of \p Len elements starting at position
  /// \p Pos. This is the paper's `split` after the type has translated
  /// indices to positions.
  LogicVector slicePos(size_t Pos, size_t Len) const;

  /// Overwrites \p Len elements starting at \p Pos with \p V (which must
  /// have exactly \p Len elements).
  void setSlicePos(size_t Pos, const LogicVector &V);

  /// Element-wise IEEE 1164 resolution; widths must agree.
  LogicVector resolveWith(const LogicVector &O) const;

  /// Element-wise logical operators; widths must agree.
  LogicVector notOp() const;
  LogicVector andOp(const LogicVector &O) const;
  LogicVector orOp(const LogicVector &O) const;
  LogicVector xorOp(const LogicVector &O) const;
  LogicVector nandOp(const LogicVector &O) const;
  LogicVector norOp(const LogicVector &O) const;
  LogicVector xnorOp(const LogicVector &O) const;

  /// Concatenation (this to the left of \p O).
  LogicVector concat(const LogicVector &O) const;

  /// Unsigned value if every bit is binary after to_X01; nullopt otherwise.
  std::optional<uint64_t> toUInt() const;

  /// numeric_std-style unsigned arithmetic modulo 2^width; widths must
  /// agree; any non-binary bit yields an all-'X' result.
  LogicVector add(const LogicVector &O) const;
  LogicVector sub(const LogicVector &O) const;
  LogicVector mul(const LogicVector &O) const;

  /// Exact value equality (same width, identical elements).
  bool operator==(const LogicVector &O) const { return Bits == O.Bits; }
  bool operator!=(const LogicVector &O) const { return !(*this == O); }

  /// VHDL relational operators folded into std_logic. eq/ne are structural
  /// element equality (VHDL's "=" on the raw value set, so 'U' = 'U' is
  /// '1'); the orderings use the numeric_std unsigned interpretation and
  /// yield 'X' whenever an operand has a non-binary bit.
  StdLogic eqOp(const LogicVector &O) const;
  StdLogic neOp(const LogicVector &O) const;
  StdLogic ltOp(const LogicVector &O) const;
  StdLogic leOp(const LogicVector &O) const;
  StdLogic gtOp(const LogicVector &O) const;
  StdLogic geOp(const LogicVector &O) const;

  /// Renders as the body of a VHDL string literal, e.g. 01ZX.
  std::string str() const;

private:
  std::vector<StdLogic> Bits;
};

} // namespace vif

#endif // VIF_STDLOGIC_LOGICVECTOR_H
