//===- stdlogic/LogicVector.cpp -------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "stdlogic/LogicVector.h"

#include <cassert>

using namespace vif;

std::optional<LogicVector> LogicVector::fromString(const std::string &Chars) {
  std::vector<StdLogic> Bits;
  Bits.reserve(Chars.size());
  for (char C : Chars) {
    std::optional<StdLogic> V = stdLogicFromChar(C);
    if (!V)
      return std::nullopt;
    Bits.push_back(*V);
  }
  return LogicVector(std::move(Bits));
}

LogicVector LogicVector::fromUInt(uint64_t Value, size_t Width) {
  LogicVector Result(Width, StdLogic::Zero);
  for (size_t I = 0; I < Width; ++I) {
    bool Bit = (Value >> I) & 1;
    Result.Bits[Width - 1 - I] = fromBool(Bit);
  }
  return Result;
}

StdLogic LogicVector::bit(size_t Pos) const {
  assert(Pos < Bits.size() && "bit position out of range");
  return Bits[Pos];
}

void LogicVector::setBit(size_t Pos, StdLogic V) {
  assert(Pos < Bits.size() && "bit position out of range");
  Bits[Pos] = V;
}

LogicVector LogicVector::slicePos(size_t Pos, size_t Len) const {
  assert(Pos + Len <= Bits.size() && "slice out of range");
  return LogicVector(
      std::vector<StdLogic>(Bits.begin() + Pos, Bits.begin() + Pos + Len));
}

void LogicVector::setSlicePos(size_t Pos, const LogicVector &V) {
  assert(Pos + V.size() <= Bits.size() && "slice out of range");
  for (size_t I = 0; I < V.size(); ++I)
    Bits[Pos + I] = V.bit(I);
}

namespace {

using BinFn = StdLogic (*)(StdLogic, StdLogic);

LogicVector zipWith(const LogicVector &A, const LogicVector &B, BinFn Fn) {
  assert(A.size() == B.size() && "width mismatch in vector operation");
  LogicVector Result(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Result.setBit(I, Fn(A.bit(I), B.bit(I)));
  return Result;
}

} // namespace

LogicVector LogicVector::resolveWith(const LogicVector &O) const {
  return zipWith(*this, O, resolve);
}

LogicVector LogicVector::notOp() const {
  LogicVector Result(size());
  for (size_t I = 0; I < size(); ++I)
    Result.setBit(I, logicNot(Bits[I]));
  return Result;
}

LogicVector LogicVector::andOp(const LogicVector &O) const {
  return zipWith(*this, O, logicAnd);
}
LogicVector LogicVector::orOp(const LogicVector &O) const {
  return zipWith(*this, O, logicOr);
}
LogicVector LogicVector::xorOp(const LogicVector &O) const {
  return zipWith(*this, O, logicXor);
}
LogicVector LogicVector::nandOp(const LogicVector &O) const {
  return zipWith(*this, O, logicNand);
}
LogicVector LogicVector::norOp(const LogicVector &O) const {
  return zipWith(*this, O, logicNor);
}
LogicVector LogicVector::xnorOp(const LogicVector &O) const {
  return zipWith(*this, O, logicXnor);
}

LogicVector LogicVector::concat(const LogicVector &O) const {
  std::vector<StdLogic> Joined = Bits;
  Joined.insert(Joined.end(), O.Bits.begin(), O.Bits.end());
  return LogicVector(std::move(Joined));
}

std::optional<uint64_t> LogicVector::toUInt() const {
  assert(Bits.size() <= 64 && "vector too wide for integer conversion");
  uint64_t Value = 0;
  for (StdLogic B : Bits) {
    std::optional<bool> Bit = toBool(B);
    if (!Bit)
      return std::nullopt;
    Value = (Value << 1) | (*Bit ? 1 : 0);
  }
  return Value;
}

namespace {

LogicVector allX(size_t Width) { return LogicVector(Width, StdLogic::X); }

uint64_t truncate(uint64_t Value, size_t Width) {
  if (Width >= 64)
    return Value;
  return Value & ((uint64_t(1) << Width) - 1);
}

} // namespace

LogicVector LogicVector::add(const LogicVector &O) const {
  assert(size() == O.size() && "width mismatch in vector arithmetic");
  std::optional<uint64_t> A = toUInt(), B = O.toUInt();
  if (!A || !B)
    return allX(size());
  return fromUInt(truncate(*A + *B, size()), size());
}

LogicVector LogicVector::sub(const LogicVector &O) const {
  assert(size() == O.size() && "width mismatch in vector arithmetic");
  std::optional<uint64_t> A = toUInt(), B = O.toUInt();
  if (!A || !B)
    return allX(size());
  return fromUInt(truncate(*A - *B, size()), size());
}

LogicVector LogicVector::mul(const LogicVector &O) const {
  assert(size() == O.size() && "width mismatch in vector arithmetic");
  std::optional<uint64_t> A = toUInt(), B = O.toUInt();
  if (!A || !B)
    return allX(size());
  return fromUInt(truncate(*A * *B, size()), size());
}

StdLogic LogicVector::eqOp(const LogicVector &O) const {
  assert(size() == O.size() && "width mismatch in vector comparison");
  return fromBool(Bits == O.Bits);
}

StdLogic LogicVector::neOp(const LogicVector &O) const {
  return logicNot(eqOp(O));
}

StdLogic LogicVector::ltOp(const LogicVector &O) const {
  assert(size() == O.size() && "width mismatch in vector comparison");
  std::optional<uint64_t> A = toUInt(), B = O.toUInt();
  if (!A || !B)
    return StdLogic::X;
  return fromBool(*A < *B);
}

StdLogic LogicVector::leOp(const LogicVector &O) const {
  std::optional<uint64_t> A = toUInt(), B = O.toUInt();
  if (!A || !B)
    return StdLogic::X;
  return fromBool(*A <= *B);
}

StdLogic LogicVector::gtOp(const LogicVector &O) const {
  return logicNot(leOp(O));
}

StdLogic LogicVector::geOp(const LogicVector &O) const {
  return logicNot(ltOp(O));
}

std::string LogicVector::str() const {
  std::string Result;
  Result.reserve(Bits.size());
  for (StdLogic B : Bits)
    Result.push_back(toChar(B));
  return Result;
}
