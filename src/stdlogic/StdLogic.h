//===- stdlogic/StdLogic.h - IEEE 1164 nine-valued logic --------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's semantic domain of logical values (Section 3):
///   LValue = {'U','X','0','1','Z','W','L','H','-'}
/// "these values are said to capture the behavior of an electrical system
/// better than traditional boolean values". This module implements the value
/// set together with the IEEE 1164 resolution function (the paper's fs,
/// applied pairwise over the multiset of active values) and the standard
/// Kleene-style logical operator tables.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_STDLOGIC_STDLOGIC_H
#define VIF_STDLOGIC_STDLOGIC_H

#include <cstdint>
#include <optional>

namespace vif {

/// One std_logic value. The enumerator order matches the conventional IEEE
/// 1164 table order; table lookups below rely on it.
enum class StdLogic : uint8_t {
  U,        ///< Uninitialized
  X,        ///< Forcing unknown
  Zero,     ///< Forcing zero
  One,      ///< Forcing one
  Z,        ///< High impedance
  W,        ///< Weak unknown
  L,        ///< Weak zero
  H,        ///< Weak one
  DontCare, ///< Don't care ('-')
};

constexpr unsigned NumStdLogicValues = 9;

/// The character used for a value in VHDL source ('U','X','0','1',...).
char toChar(StdLogic V);

/// Parses a source character into a value; nullopt for anything that is not
/// one of the nine std_logic characters (uppercase, as the standard spells
/// them).
std::optional<StdLogic> stdLogicFromChar(char C);

/// IEEE 1164 `resolved` function for two drivers. Commutative and
/// associative, so the paper's multiset resolution fs reduces to a fold.
StdLogic resolve(StdLogic A, StdLogic B);

/// Logical operators (IEEE 1164 tables).
StdLogic logicNot(StdLogic A);
StdLogic logicAnd(StdLogic A, StdLogic B);
StdLogic logicOr(StdLogic A, StdLogic B);
StdLogic logicXor(StdLogic A, StdLogic B);
StdLogic logicNand(StdLogic A, StdLogic B);
StdLogic logicNor(StdLogic A, StdLogic B);
StdLogic logicXnor(StdLogic A, StdLogic B);

/// IEEE 1164 to_X01 strength stripper: weak values map onto their forcing
/// counterparts, everything non-binary onto 'X'.
StdLogic toX01(StdLogic A);

/// True for '0'/'1' after strength stripping, i.e. values with a definite
/// boolean meaning.
bool isBinary(StdLogic A);

/// The boolean meaning of a binary (after to_X01) value; nullopt otherwise.
std::optional<bool> toBool(StdLogic A);

/// '1' for true, '0' for false; the fragment folds booleans into std_logic.
inline StdLogic fromBool(bool B) { return B ? StdLogic::One : StdLogic::Zero; }

} // namespace vif

#endif // VIF_STDLOGIC_STDLOGIC_H
