//===- workloads/AesVhdl.cpp ----------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "workloads/AesVhdl.h"

#include "aesref/Aes128.h"

#include <sstream>

using namespace vif;
using namespace vif::workloads;

namespace {

/// Renders \p Byte as an 8-bit VHDL string literal, MSB first.
std::string bits8(uint8_t Byte) {
  std::string S = "\"";
  for (int I = 7; I >= 0; --I)
    S.push_back(((Byte >> I) & 1) ? '1' : '0');
  S.push_back('"');
  return S;
}

/// Emits an unrolled S-box lookup: Out := SBox[In] as a 256-way if/elsif
/// equality chain (the paper's "replacing constants with their values").
/// The last case is a plain `else` so the lookup is total: every path
/// assigns Out, which both matches the synthesizable original and lets the
/// Reaching Definitions analysis kill earlier definitions of Out.
void emitSboxLookup(std::ostream &OS, const std::string &In,
                    const std::string &Out, const std::string &Indent) {
  for (unsigned V = 0; V < 255; ++V) {
    OS << Indent << (V == 0 ? "if " : "elsif ") << In << " = "
       << bits8(static_cast<uint8_t>(V)) << " then\n"
       << Indent << "  " << Out << " := " << bits8(aes::SBox[V]) << ";\n";
  }
  OS << Indent << "else\n"
     << Indent << "  " << Out << " := " << bits8(aes::SBox[255]) << ";\n";
  OS << Indent << "end if;\n";
}

/// xtime(x) = (x << 1) xor (0x1b when x(7) = '1' else 0): expanded into
/// slice/concat algebra — (x(6 downto 0) & "0") xor
/// ("000" & x7 & x7 & "0" & x7 & x7) with x7 = x(7 downto 7).
std::string xtimeExpr(const std::string &X) {
  std::string X7 = X + "(7 downto 7)";
  return "((" + X + "(6 downto 0) & \"0\") xor (\"000\" & " + X7 + " & " +
         X7 + " & \"0\" & " + X7 + " & " + X7 + "))";
}

} // namespace

std::string vif::workloads::shiftRowsStatements() {
  std::ostringstream OS;
  for (int R = 1; R <= 3; ++R)
    for (int C = 0; C < 4; ++C)
      OS << "variable a_" << R << "_" << C
         << " : std_logic_vector(7 downto 0);\n";
  for (int C = 0; C < 4; ++C)
    OS << "variable t_" << C << " : std_logic_vector(7 downto 0);\n";
  // Row r (1..3) shifts left by r: new a_r_c = old a_r_((c + r) mod 4).
  // All rows go through the same four temporaries — the reuse Kemmerer's
  // method cannot untangle.
  for (int R = 1; R <= 3; ++R) {
    for (int C = 0; C < 4; ++C)
      OS << "t_" << C << " := a_" << R << "_" << (C + R) % 4 << ";\n";
    for (int C = 0; C < 4; ++C)
      OS << "a_" << R << "_" << C << " := t_" << C << ";\n";
  }
  return OS.str();
}

std::string vif::workloads::addRoundKeyStatements(unsigned Bytes) {
  std::ostringstream OS;
  for (unsigned I = 0; I < Bytes; ++I)
    OS << "variable s_" << I << ", k_" << I
       << " : std_logic_vector(7 downto 0);\n";
  for (unsigned I = 0; I < Bytes; ++I)
    OS << "s_" << I << " := s_" << I << " xor k_" << I << ";\n";
  return OS.str();
}

std::string vif::workloads::subBytesStatements(unsigned Bytes) {
  std::ostringstream OS;
  for (unsigned I = 0; I < Bytes; ++I)
    OS << "variable s_" << I << " : std_logic_vector(7 downto 0);\n";
  OS << "variable t : std_logic_vector(7 downto 0);\n";
  // Each byte flows through the shared temporary t (reuse again), with the
  // implicit flow from the byte into t via the comparison chain.
  for (unsigned I = 0; I < Bytes; ++I) {
    emitSboxLookup(OS, "s_" + std::to_string(I), "t", "");
    OS << "s_" << I << " := t;\n";
  }
  return OS.str();
}

std::string vif::workloads::mixColumnsStatements() {
  std::ostringstream OS;
  for (int R = 0; R < 4; ++R)
    for (int C = 0; C < 4; ++C)
      OS << "variable s_" << R << "_" << C
         << " : std_logic_vector(7 downto 0);\n";
  for (int R = 0; R < 4; ++R)
    OS << "variable a" << R << " : std_logic_vector(7 downto 0);\n";
  // Column-major state s_R_C; temporaries a0..a3 reused across columns.
  for (int C = 0; C < 4; ++C) {
    for (int R = 0; R < 4; ++R)
      OS << "a" << R << " := s_" << R << "_" << C << ";\n";
    // FIPS-197: s0 = 2*a0 + 3*a1 + a2 + a3, rotating per row; 3*x =
    // xtime(x) xor x.
    auto X = [&](int R) { return xtimeExpr("a" + std::to_string(R)); };
    auto P = [&](int R) { return "a" + std::to_string(R); };
    OS << "s_0_" << C << " := " << X(0) << " xor (" << X(1) << " xor "
       << P(1) << ") xor " << P(2) << " xor " << P(3) << ";\n";
    OS << "s_1_" << C << " := " << P(0) << " xor " << X(1) << " xor ("
       << X(2) << " xor " << P(2) << ") xor " << P(3) << ";\n";
    OS << "s_2_" << C << " := " << P(0) << " xor " << P(1) << " xor "
       << X(2) << " xor (" << X(3) << " xor " << P(3) << ");\n";
    OS << "s_3_" << C << " := (" << X(0) << " xor " << P(0) << ") xor "
       << P(1) << " xor " << P(2) << " xor " << X(3) << ";\n";
  }
  return OS.str();
}

std::string vif::workloads::aesCoreDesign(unsigned Rounds) {
  std::ostringstream OS;
  OS << "entity aes128 is\n  port(\n";
  for (int I = 0; I < 16; ++I)
    OS << "    pt_" << I << " : in std_logic_vector(7 downto 0);\n";
  for (int I = 0; I < 16; ++I)
    OS << "    key_" << I << " : in std_logic_vector(7 downto 0);\n";
  for (int I = 0; I < 16; ++I)
    OS << "    ct_" << I << " : out std_logic_vector(7 downto 0);\n";
  OS << "    go : in std_logic\n  );\nend aes128;\n\n";

  OS << "architecture behav of aes128 is\nbegin\n  enc : process\n";
  // Key schedule words w_0..w_43, four bytes each: w_I_B.
  for (int I = 0; I < 44; ++I)
    for (int B = 0; B < 4; ++B)
      OS << "    variable w_" << I << "_" << B
         << " : std_logic_vector(7 downto 0);\n";
  for (int I = 0; I < 16; ++I)
    OS << "    variable st_" << I << " : std_logic_vector(7 downto 0);\n";
  OS << "    variable tb : std_logic_vector(7 downto 0);\n";
  OS << "    variable rot : std_logic_vector(7 downto 0);\n";
  for (int R = 0; R < 4; ++R)
    OS << "    variable a" << R << " : std_logic_vector(7 downto 0);\n";
  for (int C = 0; C < 4; ++C)
    OS << "    variable row_" << C << " : std_logic_vector(7 downto 0);\n";
  OS << "  begin\n";

  const std::string Ind = "    ";
  static const uint8_t Rcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                   0x20, 0x40, 0x80, 0x1b, 0x36};

  // --- Key expansion (FIPS-197 Section 5.2), unrolled -------------------
  for (int I = 0; I < 4; ++I)
    for (int B = 0; B < 4; ++B)
      OS << Ind << "w_" << I << "_" << B << " := key_" << (4 * I + B)
         << ";\n";
  for (int I = 4; I < 44; ++I) {
    auto Prev = [&](int B) {
      return "w_" + std::to_string(I - 1) + "_" + std::to_string(B);
    };
    if (I % 4 == 0) {
      // RotWord + SubWord + Rcon on w_{I-1}.
      OS << Ind << "rot := " << Prev(1) << ";\n";
      emitSboxLookup(OS, "rot", "tb", Ind);
      OS << Ind << "a0 := tb xor " << bits8(Rcon[I / 4 - 1]) << ";\n";
      OS << Ind << "rot := " << Prev(2) << ";\n";
      emitSboxLookup(OS, "rot", "tb", Ind);
      OS << Ind << "a1 := tb;\n";
      OS << Ind << "rot := " << Prev(3) << ";\n";
      emitSboxLookup(OS, "rot", "tb", Ind);
      OS << Ind << "a2 := tb;\n";
      OS << Ind << "rot := " << Prev(0) << ";\n";
      emitSboxLookup(OS, "rot", "tb", Ind);
      OS << Ind << "a3 := tb;\n";
      for (int B = 0; B < 4; ++B)
        OS << Ind << "w_" << I << "_" << B << " := w_" << (I - 4) << "_"
           << B << " xor a" << B << ";\n";
    } else {
      for (int B = 0; B < 4; ++B)
        OS << Ind << "w_" << I << "_" << B << " := w_" << (I - 4) << "_"
           << B << " xor " << Prev(B) << ";\n";
    }
  }

  // --- Initial AddRoundKey ----------------------------------------------
  for (int I = 0; I < 16; ++I)
    OS << Ind << "st_" << I << " := pt_" << I << " xor w_" << (I / 4) << "_"
       << (I % 4) << ";\n";

  // --- Rounds -------------------------------------------------------------
  for (unsigned Round = 1; Round <= Rounds; ++Round) {
    bool Last = Round == Rounds && Rounds == 10;
    // SubBytes.
    for (int I = 0; I < 16; ++I) {
      emitSboxLookup(OS, "st_" + std::to_string(I), "tb", Ind);
      OS << Ind << "st_" << I << " := tb;\n";
    }
    // ShiftRows: row r shifts left by r (state is column-major,
    // st_{r + 4c}); temporaries row_0..row_3 reused per row.
    for (int R = 1; R < 4; ++R) {
      for (int C = 0; C < 4; ++C)
        OS << Ind << "row_" << C << " := st_" << (R + 4 * ((C + R) % 4))
           << ";\n";
      for (int C = 0; C < 4; ++C)
        OS << Ind << "st_" << (R + 4 * C) << " := row_" << C << ";\n";
    }
    // MixColumns (skipped in the final round).
    if (!Last) {
      for (int C = 0; C < 4; ++C) {
        for (int R = 0; R < 4; ++R)
          OS << Ind << "a" << R << " := st_" << (R + 4 * C) << ";\n";
        auto X = [&](int R) { return xtimeExpr("a" + std::to_string(R)); };
        auto PL = [&](int R) { return "a" + std::to_string(R); };
        OS << Ind << "st_" << (0 + 4 * C) << " := " << X(0) << " xor ("
           << X(1) << " xor " << PL(1) << ") xor " << PL(2) << " xor "
           << PL(3) << ";\n";
        OS << Ind << "st_" << (1 + 4 * C) << " := " << PL(0) << " xor "
           << X(1) << " xor (" << X(2) << " xor " << PL(2) << ") xor "
           << PL(3) << ";\n";
        OS << Ind << "st_" << (2 + 4 * C) << " := " << PL(0) << " xor "
           << PL(1) << " xor " << X(2) << " xor (" << X(3) << " xor "
           << PL(3) << ");\n";
        OS << Ind << "st_" << (3 + 4 * C) << " := (" << X(0) << " xor "
           << PL(0) << ") xor " << PL(1) << " xor " << PL(2) << " xor "
           << X(3) << ";\n";
      }
    }
    // AddRoundKey.
    for (int I = 0; I < 16; ++I)
      OS << Ind << "st_" << I << " := st_" << I << " xor w_"
         << (4 * Round + I / 4) << "_" << (I % 4) << ";\n";
  }

  // --- Drive outputs and wait for new inputs ------------------------------
  for (int I = 0; I < 16; ++I)
    OS << Ind << "ct_" << I << " <= st_" << I << ";\n";
  OS << Ind << "wait on go;\n";
  OS << "  end process enc;\nend behav;\n";
  return OS.str();
}

std::string vif::workloads::shiftRowsDesign() {
  std::ostringstream OS;
  OS << "entity shiftrows is\n  port(\n";
  for (int R = 1; R <= 3; ++R)
    for (int C = 0; C < 4; ++C)
      OS << "    a_" << R << "_" << C
         << " : inout std_logic_vector(7 downto 0);\n";
  OS << "    start : in std_logic\n  );\nend shiftrows;\n\n";
  OS << "architecture behav of shiftrows is\nbegin\n  shift : process\n";
  for (int C = 0; C < 4; ++C)
    OS << "    variable t_" << C << " : std_logic_vector(7 downto 0);\n";
  OS << "  begin\n";
  for (int R = 1; R <= 3; ++R) {
    for (int C = 0; C < 4; ++C)
      OS << "    t_" << C << " := a_" << R << "_" << (C + R) % 4 << ";\n";
    for (int C = 0; C < 4; ++C)
      OS << "    a_" << R << "_" << C << " <= t_" << C << ";\n";
  }
  OS << "    wait on start;\n";
  OS << "  end process shift;\nend behav;\n";
  return OS.str();
}

std::string vif::workloads::leakyCoreDesign() {
  // dout <= din xor key (fine); ready is derived from a key bit — the
  // covert channel the audit must flag.
  std::ostringstream OS;
  OS << "entity leaky is\n"
        "  port(\n"
        "    key  : in std_logic_vector(7 downto 0);\n"
        "    din  : in std_logic_vector(7 downto 0);\n"
        "    go   : in std_logic;\n"
        "    dout : out std_logic_vector(7 downto 0);\n"
        "    ready : out std_logic\n"
        "  );\n"
        "end leaky;\n"
        "\n"
        "architecture behav of leaky is\n"
        "begin\n"
        "  mix : process\n"
        "    variable v : std_logic_vector(7 downto 0);\n"
        "    variable flag : std_logic;\n"
        "  begin\n"
        "    v := din xor key;\n"
        "    dout <= v;\n"
        "    flag := go;\n"
        "    if key(0 downto 0) = \"1\" then\n"
        "      flag := '1';\n"
        "    end if;\n"
        "    ready <= flag;\n"
        "    wait on go;\n"
        "  end process mix;\n"
        "end behav;\n";
  return OS.str();
}
