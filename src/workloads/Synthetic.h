//===- workloads/Synthetic.h - Synthetic program families -------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program generators for the complexity experiments (paper Section 7
/// claims O(n^5) worst case and conjectures cubic practical behavior) and
/// for property-based testing (factored vs enumerated cross-flow, native vs
/// ALFP closure, analysis vs simulator agreement).
///
//===----------------------------------------------------------------------===//

#ifndef VIF_WORKLOADS_SYNTHETIC_H
#define VIF_WORKLOADS_SYNTHETIC_H

#include <cstdint>
#include <string>

namespace vif {
namespace workloads {

/// x_1 := x_0; x_2 := x_1; ...; x_n := x_{n-1}. The RD-guided graph is the
/// n-edge path; Kemmerer's closure is the O(n^2)-edge order relation.
std::string chainStatements(unsigned N);

/// \p Groups groups of \p Temps values rotated through shared temporaries —
/// the generalized ShiftRows shape. Nodes a_G_T, temporaries t_T.
std::string tempReuseLadder(unsigned Groups, unsigned Temps);

/// A design with \p Stages processes forming a pipeline: process k waits on
/// signal s_{k-1} and drives s_k. The precise flow graph is the path
/// s_0 -> s_1 -> ... -> s_Stages (plus self-refresh edges), exercising
/// cross-process synchronization and the [Synchronized values] rule.
std::string pipelineDesign(unsigned Stages);

/// A design with \p Procs processes, each containing \p Waits wait
/// statements and signal traffic on a shared bus of \p Sigs signals;
/// stresses the cross-flow relation (|cf| = Waits^Procs tuples).
std::string syncMeshDesign(unsigned Procs, unsigned Waits, unsigned Sigs);

/// Deterministic pseudo-random scalar design: \p Procs processes over
/// \p Sigs shared signals, \p Stmts statements each, drawn from
/// assignments, if/else, while-free loops and waits. Always elaborates
/// cleanly; used by the property tests.
std::string randomDesign(uint64_t Seed, unsigned Procs, unsigned Stmts,
                         unsigned Sigs);

/// Deterministic pseudo-random statement program over scalar variables
/// (assignments + if/else), for closure property tests.
std::string randomStatements(uint64_t Seed, unsigned Stmts, unsigned Vars);

/// Deterministic pseudo-random design with an explicit environment
/// interface: in-ports i_0..i_{Ins-1}, out-ports o_0..o_{Outs-1} and a
/// clk; every process body is straight-line (assignments, xors,
/// if/else) ending in `wait on clk`, so simulation always terminates.
/// Used by the differential soundness tests: flipping one in-port and
/// observing an out-port change must be matched by a graph edge.
std::string randomPortedDesign(uint64_t Seed, unsigned Procs,
                               unsigned Stmts, unsigned Ins, unsigned Outs);

} // namespace workloads
} // namespace vif

#endif // VIF_WORKLOADS_SYNTHETIC_H
