//===- workloads/Synthetic.cpp --------------------------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//

#include "workloads/Synthetic.h"

#include <sstream>

using namespace vif;
using namespace vif::workloads;

namespace {

/// SplitMix64: small deterministic PRNG, independent of the standard
/// library so generated programs are stable across platforms.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  unsigned below(unsigned N) {
    return static_cast<unsigned>(next() % N);
  }
};

} // namespace

std::string vif::workloads::chainStatements(unsigned N) {
  std::ostringstream OS;
  for (unsigned I = 0; I <= N; ++I)
    OS << "variable x_" << I << " : std_logic;\n";
  for (unsigned I = 1; I <= N; ++I)
    OS << "x_" << I << " := x_" << (I - 1) << ";\n";
  return OS.str();
}

std::string vif::workloads::tempReuseLadder(unsigned Groups, unsigned Temps) {
  std::ostringstream OS;
  for (unsigned G = 0; G < Groups; ++G)
    for (unsigned T = 0; T < Temps; ++T)
      OS << "variable a_" << G << "_" << T << " : std_logic;\n";
  for (unsigned T = 0; T < Temps; ++T)
    OS << "variable t_" << T << " : std_logic;\n";
  for (unsigned G = 0; G < Groups; ++G) {
    // Rotate group G by (G mod Temps) + 1 positions through the shared
    // temporaries.
    unsigned Shift = (G % Temps) + 1;
    for (unsigned T = 0; T < Temps; ++T)
      OS << "t_" << T << " := a_" << G << "_" << (T + Shift) % Temps
         << ";\n";
    for (unsigned T = 0; T < Temps; ++T)
      OS << "a_" << G << "_" << T << " := t_" << T << ";\n";
  }
  return OS.str();
}

std::string vif::workloads::pipelineDesign(unsigned Stages) {
  std::ostringstream OS;
  OS << "entity pipe is\n  port(\n"
        "    s_0 : in std_logic;\n";
  for (unsigned K = 1; K < Stages; ++K)
    OS << "    s_" << K << " : inout std_logic;\n";
  OS << "    s_" << Stages << " : out std_logic\n  );\nend pipe;\n\n";
  OS << "architecture behav of pipe is\nbegin\n";
  for (unsigned K = 1; K <= Stages; ++K) {
    OS << "  st_" << K << " : process\n  begin\n"
       << "    s_" << K << " <= s_" << (K - 1) << ";\n"
       << "    wait on s_" << (K - 1) << ";\n"
       << "  end process st_" << K << ";\n";
  }
  OS << "end behav;\n";
  return OS.str();
}

std::string vif::workloads::syncMeshDesign(unsigned Procs, unsigned Waits,
                                           unsigned Sigs) {
  std::ostringstream OS;
  OS << "entity mesh is\n  port(\n    clk : in std_logic\n  );\nend "
        "mesh;\n\n";
  OS << "architecture behav of mesh is\n";
  for (unsigned S = 0; S < Sigs; ++S)
    OS << "  signal b_" << S << " : std_logic;\n";
  OS << "begin\n";
  for (unsigned P = 0; P < Procs; ++P) {
    OS << "  p_" << P << " : process\n  begin\n";
    for (unsigned W = 0; W < Waits; ++W) {
      // Drive a signal that depends on the process and phase, then
      // synchronize. Each process touches a different slice of the bus so
      // the may/must active sets differ across wait points.
      unsigned Dst = (P + W) % Sigs;
      unsigned Src = (P + W + 1) % Sigs;
      OS << "    b_" << Dst << " <= b_" << Src << ";\n";
      if (W % 2 == 1 && Sigs > 1)
        OS << "    b_" << (P * 7 + W) % Sigs << " <= clk;\n";
      OS << "    wait on clk;\n";
    }
    OS << "  end process p_" << P << ";\n";
  }
  OS << "end behav;\n";
  return OS.str();
}

std::string vif::workloads::randomDesign(uint64_t Seed, unsigned Procs,
                                         unsigned Stmts, unsigned Sigs) {
  Rng R(Seed);
  std::ostringstream OS;
  OS << "entity rnd is\n  port(\n    clk : in std_logic;\n"
        "    dout : out std_logic\n  );\nend rnd;\n\n";
  OS << "architecture behav of rnd is\n";
  for (unsigned S = 0; S < Sigs; ++S)
    OS << "  signal g_" << S << " : std_logic := '0';\n";
  OS << "begin\n";
  for (unsigned P = 0; P < Procs; ++P) {
    unsigned Vars = 2 + R.below(3);
    OS << "  p_" << P << " : process\n";
    for (unsigned V = 0; V < Vars; ++V)
      OS << "    variable v_" << V << " : std_logic := '0';\n";
    OS << "  begin\n";
    auto RandSig = [&]() { return "g_" + std::to_string(R.below(Sigs)); };
    auto RandVar = [&]() { return "v_" + std::to_string(R.below(Vars)); };
    auto RandRead = [&]() {
      switch (R.below(4)) {
      case 0:
        return RandSig();
      case 1:
        return std::string(R.below(2) ? "'1'" : "'0'");
      default:
        return RandVar();
      }
    };
    for (unsigned S = 0; S < Stmts; ++S) {
      switch (R.below(6)) {
      case 0: // signal assignment
        OS << "    " << RandSig() << " <= " << RandRead() << ";\n";
        break;
      case 1: // wait
        OS << "    wait on " << (R.below(2) ? RandSig() : "clk") << ";\n";
        break;
      case 2: { // conditional
        OS << "    if " << RandRead() << " = '1' then\n"
           << "      " << RandVar() << " := " << RandRead() << ";\n";
        if (R.below(2))
          OS << "    else\n      " << RandSig() << " <= " << RandRead()
             << ";\n";
        OS << "    end if;\n";
        break;
      }
      case 3: // logic
        OS << "    " << RandVar() << " := " << RandRead() << " xor "
           << RandRead() << ";\n";
        break;
      default: // plain copy
        OS << "    " << RandVar() << " := " << RandRead() << ";\n";
        break;
      }
    }
    // Every process ends with a synchronization so it does not spin.
    OS << "    wait on clk;\n";
    OS << "  end process p_" << P << ";\n";
  }
  // Tie the out port to the bus so the design has an observable output.
  OS << "  dout <= g_0;\n";
  OS << "end behav;\n";
  return OS.str();
}

std::string vif::workloads::randomPortedDesign(uint64_t Seed, unsigned Procs,
                                               unsigned Stmts, unsigned Ins,
                                               unsigned Outs) {
  Rng R(Seed);
  std::ostringstream OS;
  OS << "entity rport is\n  port(\n    clk : in std_logic;\n";
  for (unsigned I = 0; I < Ins; ++I)
    OS << "    i_" << I << " : in std_logic;\n";
  for (unsigned O = 0; O < Outs; ++O)
    OS << "    o_" << O << " : out std_logic" << (O + 1 < Outs ? ";" : "")
       << "\n";
  OS << "  );\nend rport;\n\n";
  OS << "architecture behav of rport is\n";
  unsigned Sigs = 2 + Outs;
  for (unsigned S = 0; S < Sigs; ++S)
    OS << "  signal g_" << S << " : std_logic := '0';\n";
  OS << "begin\n";
  for (unsigned P = 0; P < Procs; ++P) {
    unsigned Vars = 2 + R.below(3);
    OS << "  p_" << P << " : process\n";
    for (unsigned V = 0; V < Vars; ++V)
      OS << "    variable v_" << V << " : std_logic := '0';\n";
    OS << "  begin\n";
    auto RandIn = [&]() { return "i_" + std::to_string(R.below(Ins)); };
    auto RandSig = [&]() { return "g_" + std::to_string(R.below(Sigs)); };
    auto RandVar = [&]() { return "v_" + std::to_string(R.below(Vars)); };
    auto RandRead = [&]() {
      switch (R.below(5)) {
      case 0:
        return RandIn();
      case 1:
        return RandSig();
      case 2:
        return std::string(R.below(2) ? "'1'" : "'0'");
      default:
        return RandVar();
      }
    };
    for (unsigned S = 0; S < Stmts; ++S) {
      switch (R.below(5)) {
      case 0:
        OS << "    " << RandSig() << " <= " << RandRead() << ";\n";
        break;
      case 1:
        OS << "    if " << RandRead() << " = '1' then\n"
           << "      " << RandVar() << " := " << RandRead() << ";\n"
           << "    else\n      " << RandVar() << " := " << RandRead()
           << ";\n    end if;\n";
        break;
      case 2:
        OS << "    " << RandVar() << " := " << RandRead() << " xor "
           << RandRead() << ";\n";
        break;
      default:
        OS << "    " << RandVar() << " := " << RandRead() << ";\n";
        break;
      }
    }
    // Each process drives one output from a local value, then parks on
    // the clock.
    unsigned O = P % Outs;
    OS << "    o_" << O << " <= " << RandVar() << ";\n";
    OS << "    wait on clk;\n";
    OS << "  end process p_" << P << ";\n";
  }
  OS << "end behav;\n";
  return OS.str();
}

std::string vif::workloads::randomStatements(uint64_t Seed, unsigned Stmts,
                                             unsigned Vars) {
  Rng R(Seed);
  std::ostringstream OS;
  for (unsigned V = 0; V < Vars; ++V)
    OS << "variable y_" << V << " : std_logic;\n";
  auto RandVar = [&]() { return "y_" + std::to_string(R.below(Vars)); };
  for (unsigned S = 0; S < Stmts; ++S) {
    switch (R.below(4)) {
    case 0:
      OS << "if " << RandVar() << " = '1' then\n  " << RandVar() << " := "
         << RandVar() << ";\nelse\n  " << RandVar() << " := " << RandVar()
         << ";\nend if;\n";
      break;
    case 1:
      OS << RandVar() << " := " << RandVar() << " and " << RandVar()
         << ";\n";
      break;
    default:
      OS << RandVar() << " := " << RandVar() << ";\n";
      break;
    }
  }
  return OS.str();
}
