//===- workloads/AesVhdl.h - AES programs in VHDL1 --------------*- C++ -*-===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructions of the NSA AES reference programs [paper ref 17] the
/// evaluation ran on. The originals are not public; these generators follow
/// the paper's description of the analyzed code: loops unrolled, constants
/// propagated, temporaries reused across rows — the exact shape that makes
/// Kemmerer's method smear flows across rows while the RD-guided analysis
/// stays precise (Figure 5).
///
/// Two flavors are provided:
///  * statement programs (sequential function bodies, analyzed via
///    elaborateStatements with the program-end-outgoing improvement — the
///    presentation style of the paper's Figures 3-5); and
///  * full designs (entity + architecture + process + wait) exercising the
///    whole pipeline, including the simulator, whose outputs the tests check
///    against the software AES of src/aesref.
///
//===----------------------------------------------------------------------===//

#ifndef VIF_WORKLOADS_AESVHDL_H
#define VIF_WORKLOADS_AESVHDL_H

#include <string>

namespace vif {
namespace workloads {

/// The Figure 5 ShiftRows function: rows 1..3 of the AES state (nodes
/// a_1_0 .. a_3_3) shifted left by 1, 2 and 3 positions, unrolled, all rows
/// passing through the shared temporaries t_0..t_3. Statement program over
/// 8-bit variables.
std::string shiftRowsStatements();

/// AddRoundKey over \p Bytes state bytes: s_i := s_i xor k_i.
std::string addRoundKeyStatements(unsigned Bytes = 16);

/// SubBytes over \p Bytes state bytes, each S-box lookup unrolled into a
/// 256-way if/elsif equality chain on the byte value (constants propagated,
/// as the paper preprocesses).
std::string subBytesStatements(unsigned Bytes);

/// MixColumns over the full 4x4 state (16 bytes s_R_C), temporaries reused
/// across columns, xtime expanded inline into slice/concat/xor algebra.
std::string mixColumnsStatements();

/// A complete AES-128 encryption core as a VHDL1 design:
///
///   entity aes128 with ports pt_0..pt_15 : in, key_0..key_15 : in,
///   ct_0..ct_15 : out, go : in std_logic;
///
/// one process computes the key schedule and \p Rounds rounds (10 = full
/// FIPS-197 encryption) in local variables and drives the ct ports, then
/// waits on the inputs. S-box lookups are unrolled if/elsif chains.
std::string aesCoreDesign(unsigned Rounds = 10);

/// The ShiftRows computation as a design with inout ports a_R_C and a
/// process body that reads and rewrites the state through shared temps on
/// every activation (loop-carried flows compose across delta cycles).
std::string shiftRowsDesign();

/// A small key-handling core with a deliberate covert channel for the
/// policy-audit example: the entity has key/din in-ports, dout and "ready"
/// out-ports; the ready flag is (incorrectly) computed from a key bit, so
/// key -> ready flows exist in the precise graph.
std::string leakyCoreDesign();

} // namespace workloads
} // namespace vif

#endif // VIF_WORKLOADS_AESVHDL_H
