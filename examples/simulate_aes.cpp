//===- examples/simulate_aes.cpp - AES-128 under the SOS simulator --------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
//
// Generates the full AES-128 encryption core in VHDL1 (S-boxes unrolled to
// if/elsif chains as the paper's preprocessed sources), elaborates it, runs
// the structural-operational-semantics simulator on the FIPS-197 Appendix B
// vector and compares the ciphertext with the software reference.
//
//===----------------------------------------------------------------------===//

#include "aesref/Aes128.h"
#include "parse/Parser.h"
#include "sim/Simulator.h"
#include "workloads/AesVhdl.h"

#include <cstdio>
#include <iostream>

using namespace vif;

int main() {
  std::string Source = workloads::aesCoreDesign(10);
  std::cout << "generated VHDL1 core: " << Source.size() << " bytes\n";

  DiagnosticEngine Diags;
  DesignFile File = parseDesign(Source, Diags);
  std::optional<ElaboratedProgram> Program = elaborateDesign(File, Diags);
  if (!Program) {
    Diags.print(std::cerr);
    return 1;
  }
  std::cout << "elaborated: " << Program->Variables.size()
            << " variables, " << Program->Signals.size() << " signals\n";

  // FIPS-197 Appendix B vector.
  aes::Block Plain = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d,
                      0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34};
  aes::Key Key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
                  0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c};

  Simulator Sim(*Program);
  auto SigId = [&](const std::string &Name) {
    for (const ElabSignal &S : Program->Signals)
      if (S.Name == Name)
        return S.Id;
    std::cerr << "no signal " << Name << '\n';
    std::exit(1);
  };
  for (int I = 0; I < 16; ++I) {
    Sim.driveSignal(SigId("pt_" + std::to_string(I)),
                    Value::vector(LogicVector::fromUInt(Plain[I], 8)));
    Sim.driveSignal(SigId("key_" + std::to_string(I)),
                    Value::vector(LogicVector::fromUInt(Key[I], 8)));
  }
  Sim.driveSignal(SigId("go"), Value::scalar(StdLogic::One));

  SimStatus Status = Sim.run();
  std::cout << "simulation: " << simStatusName(Status) << " after "
            << Sim.deltasExecuted() << " delta cycle(s)\n";

  aes::Block Expected = aes::encrypt(Plain, Key);
  bool Match = true;
  std::cout << "ciphertext (sim / ref):\n  ";
  for (int I = 0; I < 16; ++I) {
    const Value &V = Sim.presentValue(SigId("ct_" + std::to_string(I)));
    std::optional<uint64_t> Byte = V.asVector().toUInt();
    std::printf("%02x", Byte ? static_cast<unsigned>(*Byte) : 0xEE);
    Match &= Byte && *Byte == Expected[I];
  }
  std::cout << "\n  ";
  for (int I = 0; I < 16; ++I)
    std::printf("%02x", Expected[I]);
  std::cout << '\n'
            << (Match ? "MATCH: simulator reproduces FIPS-197"
                      : "MISMATCH")
            << '\n';
  return Match ? 0 : 1;
}
