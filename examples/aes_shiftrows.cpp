//===- examples/aes_shiftrows.cpp - Figure 5 reproduction -----------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's showcase experiment (Section 6, Figure 5): the AES
// ShiftRows function, loops unrolled, all three shifted rows flowing through
// the same temporaries. Kemmerer's method smears flows across rows; the
// RD-guided analysis recovers the exact per-row rotation. Emits both graphs
// as DOT on request.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "parse/Parser.h"
#include "workloads/AesVhdl.h"

#include <iostream>
#include <string>

using namespace vif;

namespace {

/// Strips the ◦ / • interface marks so incoming and outgoing nodes merge,
/// as the paper does for Figure 5(b).
std::string stripMarks(std::string_view Name) {
  auto Strip = [&](std::string_view Suffix) -> std::string {
    if (Name.size() >= Suffix.size() &&
        Name.substr(Name.size() - Suffix.size()) == Suffix)
      return std::string(Name.substr(0, Name.size() - Suffix.size()));
    return std::string(Name);
  };
  std::string Out = Strip("◦");
  if (Out != Name)
    return Out;
  return Strip("•");
}

bool isStateNode(std::string_view Name) {
  return Name.rfind("a_", 0) == 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Dot = Argc > 1 && std::string(Argv[1]) == "--dot";

  DiagnosticEngine Diags;
  StatementProgram Prog =
      parseStatementProgram(workloads::shiftRowsStatements(), Diags);
  std::optional<ElaboratedProgram> Program =
      elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  if (!Program) {
    Diags.print(std::cerr);
    return 1;
  }
  ProgramCFG CFG = ProgramCFG::build(*Program);

  // Our analysis, improved (Table 9), end of the function treated as the
  // outgoing synchronization point; then merge n◦/n• and keep the 12 state
  // nodes — exactly the presentation of Figure 5(b).
  IFAOptions Opts;
  Opts.ProgramEndOutgoing = true;
  IFAResult Ours = analyzeInformationFlow(*Program, CFG, Opts);
  Digraph OursMerged =
      Ours.Graph.mergeNodes(stripMarks).inducedSubgraph(isStateNode);

  // Kemmerer's method on the same program, restricted to the state nodes.
  KemmererResult Base = analyzeKemmerer(*Program, CFG);
  Digraph BaseState = Base.Graph.inducedSubgraph(isStateNode);

  if (Dot) {
    BaseState.printDOT(std::cout, "kemmerer_shiftrows");
    OursMerged.printDOT(std::cout, "rd_guided_shiftrows");
    return 0;
  }

  std::cout << "AES ShiftRows, rows 1-3 through shared temporaries "
               "(12 state nodes)\n\n";
  std::cout << "Kemmerer's method: " << BaseState.numEdges()
            << " edges between state bytes\n";
  std::cout << "RD-guided analysis: " << OursMerged.numEdges()
            << " edges between state bytes\n\n";
  std::cout << "RD-guided flows (expected: row r rotated left by r):\n";
  for (const auto &[From, To] : OursMerged.sortedEdges())
    std::cout << "  " << From << " -> " << To << '\n';
  std::cout << "\nKemmerer false positives: "
            << BaseState.edgesNotIn(OursMerged).size() << " spurious edges"
            << " (cross-row flows through the reused temporaries)\n";
  return 0;
}
