//===- examples/quickstart.cpp - Library tour in 80 lines -----------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
//
// Parse a small two-process VHDL1 design, run the Information Flow analysis
// and print the resulting non-transitive flow graph next to Kemmerer's
// transitive closure.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "parse/Parser.h"

#include <iostream>

using namespace vif;

int main() {
  // A producer drives `data` from the secret; a consumer copies `data` to
  // the output, and separately copies `pub` to `mirror`. There is no flow
  // secret -> mirror, which the non-transitive graph shows and a
  // transitive method cannot.
  const char *Source = R"(
    entity demo is
      port(
        secret : in std_logic;
        pub    : in std_logic;
        dout   : out std_logic;
        mirror : out std_logic
      );
    end demo;

    architecture rtl of demo is
      signal data : std_logic;
    begin
      producer : process
      begin
        data <= secret;
        wait on secret;
      end process producer;

      consumer : process
        variable v : std_logic;
      begin
        v := data;
        dout <= v;
        v := pub;
        mirror <= v;
        wait on data, pub;
      end process consumer;
    end rtl;
  )";

  DiagnosticEngine Diags;
  DesignFile File = parseDesign(Source, Diags);
  std::optional<ElaboratedProgram> Program = elaborateDesign(File, Diags);
  if (!Program) {
    Diags.print(std::cerr);
    return 1;
  }

  ProgramCFG CFG = ProgramCFG::build(*Program);
  IFAResult Ours = analyzeInformationFlow(*Program, CFG);
  KemmererResult Base = analyzeKemmerer(*Program, CFG);

  std::cout << "== RD-guided information-flow graph ("
            << Ours.Graph.numEdges() << " edges)\n";
  for (const auto &[From, To] : Ours.Graph.sortedEdges())
    std::cout << "  " << From << " -> " << To << '\n';

  std::cout << "\n== Kemmerer's transitive closure ("
            << Base.Graph.numEdges() << " edges)\n";
  for (const auto &[From, To] : Base.Graph.sortedEdges())
    std::cout << "  " << From << " -> " << To << '\n';

  std::cout << "\nfalse positives of the transitive method: "
            << Base.Graph.edgesNotIn(Ours.Graph).size() << '\n';
  std::cout << "our graph transitive? "
            << (Ours.Graph.isTransitive() ? "yes" : "no — as the paper"
                                                    " promises")
            << '\n';
  return 0;
}
