//===- examples/covert_channel_audit.cpp - Common Criteria audit ----------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
//
// The Common Criteria workflow the paper targets (Covert Channel analysis,
// CC Chapter 14): compute the full information-flow graph of a key-handling
// core, then check a flow policy — the key may flow into the ciphertext
// output, but must not flow into the public handshake signal. The example
// core contains exactly that bug.
//
//===----------------------------------------------------------------------===//

#include "ifa/InformationFlow.h"
#include "ifa/Policy.h"
#include "parse/Parser.h"
#include "workloads/AesVhdl.h"

#include <iostream>

using namespace vif;

int main() {
  DiagnosticEngine Diags;
  DesignFile File = parseDesign(workloads::leakyCoreDesign(), Diags);
  std::optional<ElaboratedProgram> Program = elaborateDesign(File, Diags);
  if (!Program) {
    Diags.print(std::cerr);
    return 1;
  }
  ProgramCFG CFG = ProgramCFG::build(*Program);

  IFAOptions Opts;
  Opts.Improved = true; // track incoming/outgoing interface values
  IFAResult R = analyzeInformationFlow(*Program, CFG, Opts);

  std::cout << "information-flow graph of 'leaky' ("
            << R.Graph.numEdges() << " edges):\n";
  for (const auto &[From, To] : R.Graph.sortedEdges())
    std::cout << "  " << From << " -> " << To << '\n';

  FlowPolicy Policy;
  // The designer declares the intended flows; an auditor forbids the rest.
  Policy.Forbidden.push_back({"key", "ready"});
  Policy.Forbidden.push_back({"key◦", "ready•"});
  Policy.Forbidden.push_back({"din", "ready"});

  std::vector<PolicyViolation> Violations =
      checkFlowPolicy(R.Graph, Policy);
  std::cout << "\npolicy check: " << Violations.size()
            << " violation(s)\n";
  for (const PolicyViolation &V : Violations)
    std::cout << "  forbidden flow " << V.From << " -> " << V.To
              << (V.ViaPath ? " (via path)" : " (direct edge)") << '\n';

  // The audit must find the key -> ready covert channel and must not
  // accuse the legitimate din path.
  bool FoundLeak = false, FalseAlarm = false;
  for (const PolicyViolation &V : Violations) {
    FoundLeak |= V.From.rfind("key", 0) == 0;
    FalseAlarm |= V.From.rfind("din", 0) == 0;
  }
  if (!FoundLeak || FalseAlarm) {
    std::cerr << "audit mismatch\n";
    return 1;
  }
  std::cout << "\naudit: covert channel key -> ready correctly flagged; "
               "din -> ready correctly absent\n";
  return 0;
}
