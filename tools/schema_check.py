#!/usr/bin/env python3
"""Wire-format drift check: every JSON field the serializers emit must be
documented in docs/SCHEMA.md.

Scans the serialization sources (src/driver, tools/vifc) for JsonWriter
member/key calls with literal names, collects the emitted field set, and
fails when any field is missing from the backtick-quoted names in
docs/SCHEMA.md. Also cross-checks that the schema version string in
driver/Serialize.h is the one SCHEMA.md documents.

Run from the repo root (CI does:  python3 tools/schema_check.py).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SCHEMA_MD = ROOT / "docs" / "SCHEMA.md"
SERIALIZE_H = ROOT / "src" / "driver" / "Serialize.h"

# Every file that may hand field names to JsonWriter. Keep in sync with
# where JSON is produced; the point of the check is that this list stays
# short (one serialization module plus its driver-layer callers).
SOURCES = sorted(
    list((ROOT / "src" / "driver").glob("*.cpp"))
    + list((ROOT / "src" / "driver").glob("*.h"))
    + [ROOT / "tools" / "vifc" / "main.cpp"]
)

FIELD_RE = re.compile(r'\b(?:member|key)\(\s*"([A-Za-z0-9_]+)"')
VERSION_RE = re.compile(r'SchemaVersion\[\]\s*=\s*"([^"]+)"')

# Binary frames: every section tag an encoder emits (F.section("XXXX",
# ...) in driver/V1b.cpp for the v1b response format, and in
# driver/ArtifactStore.cpp for the on-disk artifact store) must appear in
# SCHEMA.md's section tables, same drift rule as for JSON fields.
SECTION_SOURCES = [
    ROOT / "src" / "driver" / "V1b.cpp",
    ROOT / "src" / "driver" / "ArtifactStore.cpp",
]
SECTION_RE = re.compile(r'\bsection\(\s*"([A-Z0-9]{4})"')
ARTIFACT_VERSION_RE = re.compile(r"ArtifactStoreVersion\s*=\s*(\d+)")


def main() -> int:
    if not SCHEMA_MD.exists():
        print(f"schema_check: missing {SCHEMA_MD}", file=sys.stderr)
        return 1

    emitted: dict[str, list[str]] = {}
    for path in SOURCES:
        text = path.read_text(encoding="utf-8")
        for field in FIELD_RE.findall(text):
            emitted.setdefault(field, []).append(
                str(path.relative_to(ROOT)))

    if not emitted:
        print("schema_check: found no emitted fields — scan broken?",
              file=sys.stderr)
        return 1

    schema_text = SCHEMA_MD.read_text(encoding="utf-8")
    documented = set(re.findall(r"`([A-Za-z0-9_.]+)`", schema_text))
    # `a.b.c` paths in the doc document their leaf fields too.
    for name in list(documented):
        documented.update(name.split("."))

    missing = {f: src for f, src in emitted.items() if f not in documented}
    if missing:
        print("schema_check: fields emitted but not documented in "
              "docs/SCHEMA.md:", file=sys.stderr)
        for field in sorted(missing):
            print(f"  `{field}`  (emitted from "
                  f"{', '.join(sorted(set(missing[field])))})",
                  file=sys.stderr)
        return 1

    tags: set[str] = set()
    for path in SECTION_SOURCES:
        found = set(SECTION_RE.findall(path.read_text(encoding="utf-8")))
        if not found:
            print(f"schema_check: found no section tags in "
                  f"{path.relative_to(ROOT)} — scan broken?",
                  file=sys.stderr)
            return 1
        tags |= found
    undocumented_tags = {t for t in tags if t not in documented}
    if undocumented_tags:
        print("schema_check: binary sections emitted but not documented "
              "in docs/SCHEMA.md:", file=sys.stderr)
        for tag in sorted(undocumented_tags):
            print(f"  `{tag}`", file=sys.stderr)
        return 1

    store_h = (ROOT / "src" / "driver" / "ArtifactStore.h").read_text(
        encoding="utf-8")
    store_version = ARTIFACT_VERSION_RE.search(store_h)
    if not store_version:
        print("schema_check: cannot find ArtifactStoreVersion in "
              "src/driver/ArtifactStore.h", file=sys.stderr)
        return 1
    store_pin = re.compile(
        rf"artifact store.*\bversion\b.*\b{store_version.group(1)}\b",
        re.IGNORECASE)
    if not store_pin.search(schema_text):
        print(f"schema_check: docs/SCHEMA.md never pins artifact store "
              f"version {store_version.group(1)}", file=sys.stderr)
        return 1

    version = VERSION_RE.search(SERIALIZE_H.read_text(encoding="utf-8"))
    if not version:
        print("schema_check: cannot find SchemaVersion in "
              "src/driver/Serialize.h", file=sys.stderr)
        return 1
    if f"`{version.group(1)}`" not in schema_text:
        print(f"schema_check: docs/SCHEMA.md never names the emitted "
              f"schema version `{version.group(1)}`", file=sys.stderr)
        return 1

    print(f"schema_check: {len(emitted)} emitted fields and {len(tags)} "
          f"binary sections all documented; schema version "
          f"{version.group(1)} and artifact store version "
          f"{store_version.group(1)} consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
