#!/usr/bin/env python3
"""Compare fresh google-benchmark JSON runs against committed baselines.

Usage:
    tools/bench_compare.py FRESH.json [FRESH2.json ...]
        [--baselines bench/baselines] [--baseline FILE]
        [--tolerance 1.5] [--update]

Each FRESH.json (as produced by `bench_x --benchmark_format=json`) is
matched against the baseline of the same basename inside --baselines,
unless --baseline names one file explicitly (only valid with a single
fresh file). A benchmark regresses when

    fresh_real_time > tolerance * baseline_real_time

Tracked user counters ride along under the same tolerance: a throughput
counter (items_per_second) regresses when it *drops* below
baseline / tolerance, and latency-quantile counters (p50_us, p99_us —
the serve load benchmark) regress when they *grow* beyond
tolerance * baseline. Counters present on only one side are ignored.

Aggregate rows (`*_BigO`, `*_RMS`, mean/median/stddev) are skipped;
benchmarks present on only one side are reported but never fail the
check, so adding or retiring benchmarks does not break CI.

With --update, each fresh run is first compared (so the delta is on
record), then written over its baseline file verbatim — the workflow for
refreshing committed baselines after a perf PR (see
bench/baselines/README.md). --update never fails on regressions; it
reports them and rewrites anyway, since the point is to pin the new
truth.

Exit status: 0 all within tolerance (or --update), 1 at least one
regression, 2 bad invocation or unreadable files.

Baselines are machine-dependent (see bench/baselines/README.md): run the
comparison on the machine that produced the baselines, and keep the
tolerance generous — the default 1.5x absorbs normal scheduler noise
while still catching order-of-magnitude rots.
"""

import argparse
import json
import os
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# User counters compared alongside real_time, with the direction that
# counts as a regression: "higher" is better for throughput, "lower" for
# latency quantiles.
_TRACKED_COUNTERS = {
    "items_per_second": "higher",
    "p50_us": "lower",
    "p99_us": "lower",
}


def load_benchmarks(path):
    """Returns {name: (real_time_ns, {counter: value})} for the
    comparable rows of one run."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_compare: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for row in doc.get("benchmarks", []):
        name = row.get("name", "")
        if row.get("run_type") == "aggregate":
            continue
        if name.endswith("_BigO") or name.endswith("_RMS"):
            continue
        if "real_time" not in row:
            continue
        counters = {c: row[c] for c in _TRACKED_COUNTERS
                    if isinstance(row.get(c), (int, float))}
        out[name] = (
            row["real_time"] * _UNIT_NS.get(row.get("time_unit", "ns"), 1.0),
            counters,
        )
    return out


def human(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.2f}{unit}"
    return f"{ns:.0f}ns"


def human_counter(counter, value):
    if counter == "items_per_second":
        return f"{value:,.0f}/s"
    return f"{value:.4g}"


def compare(fresh_path, baseline_path, tolerance):
    fresh = load_benchmarks(fresh_path)
    base = load_benchmarks(baseline_path)
    regressions = []
    print(f"== {os.path.basename(fresh_path)} vs {baseline_path} "
          f"(tolerance {tolerance:.2f}x)")
    for name in sorted(set(fresh) | set(base)):
        if name not in fresh:
            print(f"  {name:44s} only in baseline (retired?)")
            continue
        if name not in base:
            print(f"  {name:44s} only in fresh run (new)")
            continue
        fresh_ns, fresh_counters = fresh[name]
        base_ns, base_counters = base[name]
        ratio = fresh_ns / base_ns if base_ns else float("inf")
        status = "ok"
        if ratio > tolerance:
            status = "REGRESSED"
            regressions.append((name, ratio))
        elif ratio < 1.0 / tolerance:
            status = "faster"
        print(f"  {name:44s} {human(base_ns):>10s} -> "
              f"{human(fresh_ns):>10s}  x{ratio:5.2f}  {status}")
        for counter, direction in _TRACKED_COUNTERS.items():
            if counter not in fresh_counters or counter not in base_counters:
                continue
            b, f = base_counters[counter], fresh_counters[counter]
            # Normalize so >1 always means worse, whatever the direction.
            worse = (b / f if direction == "higher" else f / b) \
                if b and f else float("inf")
            cstatus = "ok"
            if worse > tolerance:
                cstatus = "REGRESSED"
                regressions.append((f"{name}[{counter}]", worse))
            elif worse < 1.0 / tolerance:
                cstatus = "better"
            print(f"    {counter:42s} {human_counter(counter, b):>10s} -> "
                  f"{human_counter(counter, f):>10s}  x{worse:5.2f}  "
                  f"{cstatus}")
    return regressions


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("fresh", nargs="+", help="fresh benchmark JSON file(s)")
    ap.add_argument("--baselines", default="bench/baselines",
                    help="directory of committed BENCH_*.json baselines")
    ap.add_argument("--baseline", default=None,
                    help="explicit baseline file (single fresh file only)")
    ap.add_argument("--tolerance", type=float, default=1.5,
                    help="allowed fresh/baseline real_time ratio (default 1.5)")
    ap.add_argument("--update", action="store_true",
                    help="after comparing, rewrite each baseline from its "
                         "fresh run (never fails on regressions)")
    args = ap.parse_args()
    if args.baseline and len(args.fresh) != 1:
        ap.error("--baseline requires exactly one fresh file")

    all_regressions = []
    for fresh_path in args.fresh:
        baseline_path = args.baseline or os.path.join(
            args.baselines, os.path.basename(fresh_path))
        if not os.path.exists(baseline_path):
            if not args.update:
                print(f"bench_compare: no baseline {baseline_path}; skipping "
                      f"(commit one to start tracking)", file=sys.stderr)
        else:
            all_regressions += compare(fresh_path, baseline_path,
                                       args.tolerance)
        if args.update:
            # Validate before writing: a truncated fresh run must never
            # clobber a good baseline.
            rows = load_benchmarks(fresh_path)
            if not rows:
                print(f"bench_compare: {fresh_path} has no comparable "
                      f"benchmarks; not updating {baseline_path}",
                      file=sys.stderr)
                sys.exit(2)
            with open(fresh_path, "r", encoding="utf-8") as src:
                content = src.read()
            with open(baseline_path, "w", encoding="utf-8") as dst:
                dst.write(content)
            print(f"  updated {baseline_path} ({len(rows)} benchmarks)")

    if args.update:
        if all_regressions:
            print(f"bench_compare: {len(all_regressions)} regression(s) "
                  f"baked into the refreshed baselines — intended only "
                  f"after a reviewed perf change", file=sys.stderr)
        return 0
    if all_regressions:
        print(f"bench_compare: {len(all_regressions)} regression(s):",
              file=sys.stderr)
        for name, ratio in all_regressions:
            print(f"  {name}: x{ratio:.2f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
