//===- tools/vifc-fuzz/main.cpp - Differential fuzzing driver -------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vifc-fuzz: drive randomized designs (src/gen) through every retained
/// dense/reference oracle pair and through destructive source mutation.
///
///   vifc-fuzz [--mode oracle|query|mutate|all] [--start N] [--count N]
///             [--seed N] [--mutants N] [--minimize] [--dump DIR] [--quiet]
///
/// Oracle mode, per seed: generate a valid-by-construction design, then
/// assert (1) parse + elaborate succeed, (2) dense RD == ReferenceSolver
/// label by label, (3) --jobs invariance of both RD fixpoints, (4) full
/// IFA through the dense solvers == through the reference solvers,
/// (5) BitSet closure == IFAOptions::ReferenceClosure, (6) sorted-run
/// ResourceMatrix == ReferenceResourceMatrix under shuffled replay,
/// (7) Digraph::transitiveClosure == DFS reachability on the flow graph,
/// (8) determinism: regeneration and reanalysis are byte/set identical.
///
/// Query mode, per seed: build a FlowQueryEngine over the improved flow
/// graph and check it against first-principles graph walks — reaches()
/// against DFS for a deterministic sample of ordered node pairs, every
/// positive witness validated edge by edge and against the exact BFS
/// distance, reachableFrom/whatReaches against per-node DFS sets.
///
/// Mutate mode, per seed: corrupt the generated source (truncation, token
/// splicing, byte flips — src/gen/Mutator.h) and require the frontend to
/// diagnose cleanly or succeed; crashes, hangs and sanitizer reports are
/// the failures this mode exists to surface.
///
/// Incremental mode, per seed: route the Table 4/5 solvers through a
/// ProcessArtifactTable (rd/Incremental.h) — once against a cold table and
/// once against the warmed table, which must reuse every artifact — and
/// require the recomposed results and the full composed IFA to match the
/// cold path set for set, label by label. The table persists across seeds,
/// so cross-design artifact sharing is fuzzed too.
///
/// Any failing seed prints a one-line reproducer (`vifc-fuzz --seed N`)
/// and, with --minimize, a greedily reduced source. Exit code: 0 clean,
/// 1 failures found, 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "gen/Generator.h"
#include "gen/Minimizer.h"
#include "gen/Mutator.h"
#include "ifa/InformationFlow.h"
#include "ifa/LocalDeps.h"
#include "parse/Parser.h"
#include "query/FlowQueryEngine.h"
#include "rd/Incremental.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace vif;

namespace {

struct Options {
  enum class Mode { Oracle, Query, Mutate, Incremental, All };
  Mode M = Mode::All;
  uint64_t Start = 1;
  uint64_t Count = 50;
  bool SingleSeed = false;
  unsigned Mutants = 2;
  bool Minimize = false;
  bool Quiet = false;
  std::string DumpDir;
};

int usage() {
  std::cerr
      << "usage: vifc-fuzz [options]\n"
         "  --mode oracle|query|mutate|incremental|all\n"
         "                            which battery to run (default all)\n"
         "  --start N                 first seed (default 1)\n"
         "  --count N                 number of seeds (default 50)\n"
         "  --seed N                  run exactly seed N (reproducer)\n"
         "  --mutants N               mutated variants per seed (default 2)\n"
         "  --minimize                reduce any failing source greedily\n"
         "  --dump DIR                write generated designs to "
         "DIR/gen_<seed>.vhd\n"
         "  --quiet                   only report failures and the summary\n";
  return 2;
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End)
    return false;
  Out = V;
  return true;
}

/// Parse + elaborate \p Source as a design file. On failure returns
/// nullopt with the diagnostics in \p Err.
std::optional<ElaboratedProgram> frontend(const std::string &Source,
                                          std::string &Err) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Source, Diags);
  std::optional<ElaboratedProgram> P;
  if (!Diags.hasErrors())
    P = elaborateDesign(F, Diags);
  if (!P)
    Err = Diags.str();
  return P;
}

/// DFS reachability oracle for Digraph::transitiveClosure.
Digraph naiveClosure(const Digraph &G) {
  Digraph C;
  for (std::string_view Name : G.nodes())
    C.addNode(Name);
  size_t N = G.numNodes();
  for (Digraph::NodeId S = 0; S < N; ++S) {
    std::vector<bool> Seen(N, false);
    std::vector<Digraph::NodeId> Stack = {S};
    while (!Stack.empty()) {
      Digraph::NodeId Cur = Stack.back();
      Stack.pop_back();
      for (Digraph::NodeId Succ : G.successors(Cur))
        if (!Seen[Succ]) {
          Seen[Succ] = true;
          C.addEdge(S, Succ);
          Stack.push_back(Succ);
        }
    }
  }
  return C;
}

std::vector<RMEntry> entriesOf(const ResourceMatrix &RM) {
  return std::vector<RMEntry>(RM.begin(), RM.end());
}

/// Runs the whole oracle battery on \p Source. Returns an empty string on
/// agreement, a description of the first disagreement otherwise. This is
/// also the minimizer predicate for oracle failures, so it must depend on
/// nothing but the source text.
std::string oracleFailure(const std::string &Source) {
  std::string Err;
  std::optional<ElaboratedProgram> P = frontend(Source, Err);
  if (!P)
    return "generator emitted an invalid design:\n" + Err;
  ProgramCFG CFG = ProgramCFG::build(*P);

  // (2) dense vs reference solvers, label by label.
  ActiveSignalsResult Dense = analyzeActiveSignals(*P, CFG);
  ActiveSignalsResult Ref = analyzeActiveSignalsReference(*P, CFG);
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    if (!(Dense.MayEntry[L] == Ref.MayEntry[L]) ||
        !(Dense.MayExit[L] == Ref.MayExit[L]))
      return "active-signal may sets disagree at label " + std::to_string(L);
    if (!(Dense.MustEntry[L] == Ref.MustEntry[L]) ||
        !(Dense.MustExit[L] == Ref.MustExit[L]))
      return "active-signal must sets disagree at label " + std::to_string(L);
  }
  ReachingDefsResult RDDense = analyzeReachingDefs(*P, CFG, Dense);
  ReachingDefsResult RDRef = analyzeReachingDefsReference(*P, CFG, Ref);
  for (LabelId L = 1; L <= CFG.numLabels(); ++L)
    if (!(RDDense.Entry[L] == RDRef.Entry[L]) ||
        !(RDDense.Exit[L] == RDRef.Exit[L]))
      return "reaching-defs sets disagree at label " + std::to_string(L);

  // (3) --jobs invariance of both fixpoints.
  ActiveSignalsResult DenseJ = analyzeActiveSignals(*P, CFG, 4);
  ReachingDefsOptions JobsOpts;
  JobsOpts.Jobs = 4;
  ReachingDefsResult RDJ = analyzeReachingDefs(*P, CFG, DenseJ, JobsOpts);
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    if (!(DenseJ.MayEntry[L] == Dense.MayEntry[L]) ||
        !(DenseJ.MustExit[L] == Dense.MustExit[L]))
      return "active signals not --jobs invariant at label " +
             std::to_string(L);
    if (!(RDJ.Entry[L] == RDDense.Entry[L]) ||
        !(RDJ.Exit[L] == RDDense.Exit[L]))
      return "reaching defs not --jobs invariant at label " +
             std::to_string(L);
  }

  // (4) full IFA dense vs routed through the reference solvers.
  IFAOptions Plain;
  IFAOptions RefRD;
  RefRD.RD.ReferenceSolver = true;
  IFAResult IfaDense = analyzeInformationFlow(*P, CFG, Plain);
  IFAResult IfaRef = analyzeInformationFlow(*P, CFG, RefRD);
  if (!(IfaDense.RMgl == IfaRef.RMgl))
    return "IFA RMgl differs between dense and reference RD";
  if (IfaDense.Graph.numNodes() != IfaRef.Graph.numNodes() ||
      IfaDense.Graph.sortedEdges() != IfaRef.Graph.sortedEdges())
    return "IFA flow graph differs between dense and reference RD";

  // (5) BitSet closure vs ReferenceClosure, plain and improved. The
  // improved result (richer matrix: interface nodes) feeds (6)-(8).
  IFAResult IfaImproved;
  for (bool Improved : {false, true}) {
    IFAOptions ClosOpts;
    ClosOpts.Improved = Improved;
    IFAOptions RefC = ClosOpts;
    RefC.ReferenceClosure = true;
    IFAResult A = analyzeInformationFlow(*P, CFG, ClosOpts);
    IFAResult B = analyzeInformationFlow(*P, CFG, RefC);
    if (!(A.RMlo == B.RMlo) || !(A.RMgl == B.RMgl))
      return std::string("closure matrices disagree (improved=") +
             (Improved ? "1)" : "0)");
    if (!A.Graph.sameFlows(B.Graph))
      return std::string("closure graphs disagree (improved=") +
             (Improved ? "1)" : "0)");
    if (Improved)
      IfaImproved = std::move(A);
  }

  // (6) matrix backends under shuffled replay of the global matrix.
  {
    std::vector<RMEntry> Entries = entriesOf(IfaImproved.RMgl);
    uint64_t S = 0x243f6a8885a308d3ull;
    for (size_t I = Entries.size(); I > 1; --I) {
      S ^= S << 13;
      S ^= S >> 7;
      S ^= S << 17;
      std::swap(Entries[I - 1], Entries[S % I]);
    }
    ResourceMatrix DenseRM;
    ReferenceResourceMatrix RefRM;
    size_t Op = 0;
    for (const RMEntry &E : Entries) {
      if (DenseRM.insert(E.N, E.L, E.A) != RefRM.insert(E.N, E.L, E.A))
        return "matrix backends disagree on insert";
      if (++Op % 5 == 0 && DenseRM.size() != RefRM.size())
        return "matrix backends disagree on size";
    }
    std::vector<RMEntry> FromDense = entriesOf(DenseRM);
    std::vector<RMEntry> FromRef(RefRM.begin(), RefRM.end());
    if (FromDense.size() != FromRef.size())
      return "matrix backends disagree on entry count";
    for (size_t I = 0; I < FromDense.size(); ++I)
      if (!(FromDense[I] == FromRef[I]))
        return "matrix entry streams diverge at " + std::to_string(I);
  }

  // (7) Warshall closure vs DFS oracle on this design's flow graph.
  {
    Digraph Fast = IfaImproved.Graph.transitiveClosure();
    Digraph Oracle = naiveClosure(IfaImproved.Graph);
    if (!Fast.sameFlows(Oracle))
      return "transitive closure disagrees with DFS reachability";
    if (!Fast.isTransitive())
      return "transitive closure is not transitive";
  }

  // (8) determinism: a second analysis run over a fresh elaboration must
  // reproduce the matrices and graph exactly.
  {
    std::string Err2;
    std::optional<ElaboratedProgram> P2 = frontend(Source, Err2);
    if (!P2)
      return "re-elaboration failed:\n" + Err2;
    ProgramCFG CFG2 = ProgramCFG::build(*P2);
    IFAOptions Improved;
    Improved.Improved = true;
    IFAResult Again = analyzeInformationFlow(*P2, CFG2, Improved);
    if (!(Again.RMgl == IfaImproved.RMgl) ||
        Again.Graph.sortedEdges() != IfaImproved.Graph.sortedEdges())
      return "re-analysis is not deterministic";
  }
  return "";
}

/// Exact BFS distance (in edges, length >= 1) from \p Src to \p Sink, or
/// SIZE_MAX when unreachable. Matches FlowQueryEngine's witness semantics:
/// Src == Sink asks for the shortest cycle through the node.
size_t bfsDistance(const Digraph &G, Digraph::NodeId Src,
                   Digraph::NodeId Sink) {
  std::vector<size_t> Dist(G.numNodes(), SIZE_MAX);
  std::vector<Digraph::NodeId> Queue;
  for (Digraph::NodeId S : G.successors(Src)) {
    if (S == Sink)
      return 1;
    if (Dist[S] == SIZE_MAX) {
      Dist[S] = 1;
      Queue.push_back(S);
    }
  }
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    Digraph::NodeId Cur = Queue[Head];
    for (Digraph::NodeId S : G.successors(Cur)) {
      if (S == Sink)
        return Dist[Cur] + 1;
      if (Dist[S] == SIZE_MAX) {
        Dist[S] = Dist[Cur] + 1;
        Queue.push_back(S);
      }
    }
  }
  return SIZE_MAX;
}

/// Query battery: a FlowQueryEngine over the improved flow graph must agree
/// with first-principles DFS/BFS walks of the same graph. Like
/// oracleFailure this doubles as the minimizer predicate, so the pair
/// sample is a pure function of the source text.
std::string queryFailure(const std::string &Source) {
  std::string Err;
  std::optional<ElaboratedProgram> P = frontend(Source, Err);
  if (!P)
    return "generator emitted an invalid design:\n" + Err;
  ProgramCFG CFG = ProgramCFG::build(*P);
  IFAOptions Improved;
  Improved.Improved = true;
  IFAResult R = analyzeInformationFlow(*P, CFG, Improved);
  const Digraph &G = R.Graph;
  query::FlowQueryEngine Q(G);

  size_t N = G.numNodes();
  const std::vector<std::string_view> &Names = G.nodes();
  auto pairName = [&](Digraph::NodeId A, Digraph::NodeId B) {
    return "(" + std::string(Names[A]) + ", " + std::string(Names[B]) + ")";
  };

  // Ordered pair sample: exhaustive on small graphs, otherwise 256 pairs
  // drawn from a splitmix64 stream seeded by an FNV-1a hash of the source.
  std::vector<std::pair<Digraph::NodeId, Digraph::NodeId>> Pairs;
  if (N == 0)
    return Q.reaches("a", "a") ? "empty graph answers reaches" : "";
  if (N <= 24) {
    for (Digraph::NodeId A = 0; A < N; ++A)
      for (Digraph::NodeId B = 0; B < N; ++B)
        Pairs.emplace_back(A, B);
  } else {
    uint64_t H = 0xcbf29ce484222325ull;
    for (char C : Source) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001b3ull;
    }
    auto next = [&H]() {
      H += 0x9e3779b97f4a7c15ull;
      uint64_t Z = H;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
      return Z ^ (Z >> 31);
    };
    for (size_t I = 0; I < 256; ++I)
      Pairs.emplace_back(next() % N, next() % N);
  }

  for (auto [A, B] : Pairs) {
    std::string_view NA = Names[A], NB = Names[B];
    bool Fast = Q.reaches(NA, NB);
    if (Fast != G.reachable(NA, NB))
      return "reaches" + pairName(A, B) + " disagrees with DFS";
    std::optional<std::vector<query::WitnessStep>> W = Q.witnessPath(NA, NB);
    if (W.has_value() != Fast)
      return "witness presence disagrees with reaches" + pairName(A, B);
    if (!W)
      continue;
    if (W->size() < 2 || W->front().Node != NA || W->back().Node != NB)
      return "witness endpoints wrong for " + pairName(A, B);
    for (size_t I = 0; I + 1 < W->size(); ++I)
      if (!G.hasEdge((*W)[I].Node, (*W)[I + 1].Node))
        return "witness uses a non-edge for " + pairName(A, B);
    if (W->size() != bfsDistance(G, A, B) + 1)
      return "witness is not a shortest path for " + pairName(A, B);
    for (const query::WitnessStep &Step : *W)
      if (!(query::makeWitnessStep(Step.Node) == Step))
        return "witness step mark not canonical for " + pairName(A, B);
  }

  // Forward/backward sets against per-node DFS, for a prefix of node ids.
  for (Digraph::NodeId S = 0; S < N && S < 8; ++S) {
    std::vector<std::string> Fwd, Bwd;
    for (Digraph::NodeId T = 0; T < N; ++T) {
      if (G.reachable(Names[S], Names[T]))
        Fwd.push_back(std::string(Names[T]));
      if (G.reachable(Names[T], Names[S]))
        Bwd.push_back(std::string(Names[T]));
    }
    std::sort(Fwd.begin(), Fwd.end());
    std::sort(Bwd.begin(), Bwd.end());
    if (Q.reachableFrom(Names[S]) != Fwd)
      return "reachableFrom(" + std::string(Names[S]) +
             ") disagrees with DFS";
    if (Q.whatReaches(Names[S]) != Bwd)
      return "whatReaches(" + std::string(Names[S]) + ") disagrees with DFS";
  }

  // Unknown names answer negatively everywhere.
  if (Q.reaches("<no-such-node>", Names[0]) ||
      Q.witnessPath(Names[0], "<no-such-node>") ||
      !Q.reachableFrom("<no-such-node>").empty() ||
      !Q.whatReaches("<no-such-node>").empty())
    return "unknown node name did not answer negatively";
  return "";
}

/// Mutation battery: the frontend must terminate with either success or
/// diagnostics on arbitrary corruptions. Returns a failure description or
/// empty. Crashes/hangs are caught by the harness (sanitizers + ctest
/// timeout), not here.
std::string mutationFailure(const std::string &Mutant) {
  DiagnosticEngine Diags;
  DesignFile F = parseDesign(Mutant, Diags);
  if (Diags.hasErrors())
    return ""; // cleanly diagnosed
  std::optional<ElaboratedProgram> P = elaborateDesign(F, Diags);
  if (!P) {
    if (!Diags.hasErrors())
      return "elaboration failed without diagnostics";
    return "";
  }
  // Valid by accident: the analyses must cope too (bounded — mutants are
  // capped at 64KB by the mutator).
  ProgramCFG CFG = ProgramCFG::build(*P);
  analyzeInformationFlow(*P, CFG);
  return "";
}

/// Incremental battery: Table 4/5 through \p Table vs the cold solvers,
/// label by label, then the composed IFA vs analyzeInformationFlow. When
/// \p ExpectFullReuse (the table was warmed by a previous run of the same
/// source) additionally require that no fixpoint ran. Returns a failure
/// description or empty.
std::string incrementalFailure(const std::string &Source,
                               ProcessArtifactTable &Table,
                               bool ExpectFullReuse) {
  std::string Err;
  std::optional<ElaboratedProgram> P = frontend(Source, Err);
  if (!P)
    return "generator emitted an invalid design:\n" + Err;
  ProgramCFG CFG = ProgramCFG::build(*P);

  ReachingDefsOptions RdOpts;
  ActiveSignalsResult ActInc;
  ReachingDefsResult RdInc;
  IncrementalStats Stats;
  if (!analyzeIncremental(*P, CFG, RdOpts, Table, ActInc, RdInc, &Stats))
    return "incremental layer declined default options";
  size_t NumProcs = CFG.processes().size();
  if (Stats.ActiveSolved + Stats.ActiveReused != NumProcs ||
      Stats.RdSolved + Stats.RdReused != NumProcs)
    return "incremental stats do not sum to the process count";
  if (ExpectFullReuse && (Stats.ActiveSolved || Stats.RdSolved))
    return "warm table re-solved " + std::to_string(Stats.ActiveSolved) +
           "/" + std::to_string(Stats.RdSolved) +
           " processes on an unchanged design";

  ActiveSignalsResult ActCold = analyzeActiveSignals(*P, CFG);
  ReachingDefsResult RdCold = analyzeReachingDefs(*P, CFG, ActCold);
  for (LabelId L = 1; L <= CFG.numLabels(); ++L) {
    if (!(ActInc.MayEntry[L] == ActCold.MayEntry[L]) ||
        !(ActInc.MayExit[L] == ActCold.MayExit[L]) ||
        !(ActInc.MustEntry[L] == ActCold.MustEntry[L]) ||
        !(ActInc.MustExit[L] == ActCold.MustExit[L]))
      return "incremental active signals disagree at label " +
             std::to_string(L);
    if (!(RdInc.Entry[L] == RdCold.Entry[L]) ||
        !(RdInc.Exit[L] == RdCold.Exit[L]))
      return "incremental reaching defs disagree at label " +
             std::to_string(L);
  }
  if (ActInc.Iterations != ActCold.Iterations ||
      RdInc.Iterations != RdCold.Iterations)
    return "incremental iteration totals differ from the cold run";

  IFAOptions IfaOpts;
  IFAResult Cold = analyzeInformationFlow(*P, CFG, IfaOpts);
  IFAResult Inc = composeInformationFlow(*P, CFG, IfaOpts,
                                         computeLocalDeps(*P, CFG),
                                         std::move(ActInc), std::move(RdInc));
  if (!(Inc.RMlo == Cold.RMlo) || !(Inc.RMgl == Cold.RMgl))
    return "composed IFA matrices differ from the cold pipeline";
  if (Inc.Graph.sortedEdges() != Cold.Graph.sortedEdges())
    return "composed IFA flow graph differs from the cold pipeline";
  return "";
}

void reportFailure(uint64_t Seed, const std::string &What,
                   const std::string &Source, const Options &Opts,
                   const std::function<bool(const std::string &)> &Pred) {
  std::cerr << "FAIL seed " << Seed << ": " << What << "\n"
            << "  reproduce: vifc-fuzz --seed " << Seed << "\n";
  if (Opts.Minimize) {
    std::string Min = gen::minimizeSource(Source, Pred);
    std::cerr << "  minimized to " << Min.size() << " bytes:\n"
              << "----------------------------------------\n"
              << Min
              << (Min.empty() || Min.back() == '\n' ? "" : "\n")
              << "----------------------------------------\n";
  }
}

} // namespace

int main(int argc, char **argv) {
  Options Opts;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A == "--mode") {
      const char *V = value();
      if (!V)
        return usage();
      std::string M = V;
      if (M == "oracle")
        Opts.M = Options::Mode::Oracle;
      else if (M == "query")
        Opts.M = Options::Mode::Query;
      else if (M == "mutate")
        Opts.M = Options::Mode::Mutate;
      else if (M == "incremental")
        Opts.M = Options::Mode::Incremental;
      else if (M == "all")
        Opts.M = Options::Mode::All;
      else
        return usage();
    } else if (A == "--start") {
      const char *V = value();
      if (!V || !parseU64(V, Opts.Start))
        return usage();
    } else if (A == "--count") {
      const char *V = value();
      if (!V || !parseU64(V, Opts.Count))
        return usage();
    } else if (A == "--seed") {
      const char *V = value();
      if (!V || !parseU64(V, Opts.Start))
        return usage();
      Opts.Count = 1;
      Opts.SingleSeed = true;
    } else if (A == "--mutants") {
      uint64_t N;
      const char *V = value();
      if (!V || !parseU64(V, N))
        return usage();
      Opts.Mutants = static_cast<unsigned>(N);
    } else if (A == "--minimize") {
      Opts.Minimize = true;
    } else if (A == "--quiet") {
      Opts.Quiet = true;
    } else if (A == "--dump") {
      const char *V = value();
      if (!V)
        return usage();
      Opts.DumpDir = V;
    } else {
      std::cerr << "vifc-fuzz: unknown argument '" << A << "'\n";
      return usage();
    }
  }

  bool RunOracle =
      Opts.M == Options::Mode::Oracle || Opts.M == Options::Mode::All;
  bool RunQuery =
      Opts.M == Options::Mode::Query || Opts.M == Options::Mode::All;
  bool RunMutate =
      Opts.M == Options::Mode::Mutate || Opts.M == Options::Mode::All;
  bool RunIncremental = Opts.M == Options::Mode::Incremental ||
                        Opts.M == Options::Mode::All;
  unsigned Failures = 0;
  uint64_t OracleRuns = 0, QueryRuns = 0, MutantRuns = 0,
           IncrementalRuns = 0;
  // Shared across seeds so cross-design artifact reuse is fuzzed too;
  // content-hashed keys make false sharing a reportable failure.
  ProcessArtifactTable SharedTable;

  for (uint64_t Seed = Opts.Start; Seed < Opts.Start + Opts.Count; ++Seed) {
    std::string Source = gen::generateDesign(Seed);
    if (Source != gen::generateDesign(Seed)) {
      std::cerr << "FAIL seed " << Seed << ": generator not deterministic\n";
      ++Failures;
      continue;
    }
    if (!Opts.DumpDir.empty()) {
      std::string Path =
          Opts.DumpDir + "/gen_" + std::to_string(Seed) + ".vhd";
      std::ofstream Out(Path, std::ios::binary);
      Out << Source;
      if (!Out) {
        std::cerr << "vifc-fuzz: cannot write " << Path << "\n";
        return 2;
      }
    }
    if (RunOracle) {
      ++OracleRuns;
      std::string What = oracleFailure(Source);
      if (!What.empty()) {
        ++Failures;
        reportFailure(Seed, What, Source, Opts, [](const std::string &S) {
          return !oracleFailure(S).empty();
        });
      } else if (!Opts.Quiet) {
        std::cout << "seed " << Seed << ": " << Source.size()
                  << " bytes, oracle battery ok\n";
      }
    }
    if (RunQuery) {
      ++QueryRuns;
      std::string What = queryFailure(Source);
      if (!What.empty()) {
        ++Failures;
        reportFailure(Seed, What, Source, Opts, [](const std::string &S) {
          return !queryFailure(S).empty();
        });
      } else if (!Opts.Quiet) {
        std::cout << "seed " << Seed << ": query battery ok\n";
      }
    }
    if (RunIncremental) {
      ++IncrementalRuns;
      // First pass may reuse cross-seed artifacts; the second, over the
      // table the first just warmed, must reuse everything.
      std::string What = incrementalFailure(Source, SharedTable, false);
      if (What.empty())
        What = incrementalFailure(Source, SharedTable, true);
      if (!What.empty()) {
        ++Failures;
        reportFailure(Seed, What, Source, Opts, [](const std::string &S) {
          ProcessArtifactTable Fresh;
          return !incrementalFailure(S, Fresh, false).empty();
        });
      } else if (!Opts.Quiet) {
        std::cout << "seed " << Seed << ": incremental battery ok\n";
      }
    }
    if (RunMutate) {
      for (unsigned K = 0; K < Opts.Mutants; ++K) {
        gen::MutateOptions MOpts;
        MOpts.Seed = Seed * 0x10001 + K;
        std::string Mutant = gen::mutateSource(Source, MOpts);
        ++MutantRuns;
        std::string What = mutationFailure(Mutant);
        if (!What.empty()) {
          ++Failures;
          reportFailure(Seed, What + " (mutant " + std::to_string(K) + ")",
                        Mutant, Opts, [](const std::string &S) {
                          return !mutationFailure(S).empty();
                        });
        }
      }
      if (!Opts.Quiet)
        std::cout << "seed " << Seed << ": " << Opts.Mutants
                  << " mutants diagnosed cleanly\n";
    }
  }

  std::cout << "vifc-fuzz: " << OracleRuns << " oracle seeds, " << QueryRuns
            << " query seeds, " << IncrementalRuns << " incremental seeds, "
            << MutantRuns << " mutants, " << Failures << " failure(s)\n";
  return Failures ? 1 : 0;
}
