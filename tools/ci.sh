#!/usr/bin/env bash
# Tier-1 verify, as run by CI (.github/workflows/ci.yml) and locally.
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
#
# VIFC_SANITIZE=address,undefined (or address / undefined / thread) builds
# the whole tree with -fsanitize and runs the same suite under it; the
# bench steps are skipped there (sanitized timings mean nothing).
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
SANITIZE="${VIFC_SANITIZE:-}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DVIFC_WERROR=ON \
  -DVIFC_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Differential fuzz smoke straight through the CLI (ctest's
# vifc_fuzz_smoke covers seeds 1-200; this fixed range extends it and
# proves the reproducer interface works from a shell).
"$BUILD_DIR/vifc-fuzz" --mode all --start 1000 --count 100 --mutants 2 \
  --quiet
echo "fuzz smoke passed"

# Serve smoke: the long-lived mode must answer line-delimited vifc.v1
# requests with a cache hit on the repeated one (full protocol coverage
# lives in ctest's vifc_serve_smoke and tests/serve_test.cpp).
serve_out=$(printf '%s\n%s\n' \
  '{"schema":"vifc.v1","id":1,"command":"flows","path":"tests/inputs/smoke.vhd"}' \
  '{"schema":"vifc.v1","id":2,"command":"flows","path":"tests/inputs/smoke.vhd"}' \
  | "$BUILD_DIR/vifc" serve)
echo "$serve_out" | grep -q '"schema":"vifc.v1"' \
  && echo "$serve_out" | grep -q '"cacheHit":true' \
  || { echo "serve smoke failed:"; echo "$serve_out"; exit 1; }
echo "serve smoke passed"

# Store smoke: two invocations sharing a --store directory. The second
# must be a pure hit — its stderr summary reports one load served and
# nothing solved or written — and stdout must be byte-identical.
store_dir=$(mktemp -d)
store_out1=$("$BUILD_DIR/vifc" flows --store "$store_dir" \
  tests/inputs/smoke.vhd 2>"$store_dir/err1")
store_out2=$("$BUILD_DIR/vifc" flows --store "$store_dir" \
  tests/inputs/smoke.vhd 2>"$store_dir/err2")
[ "$store_out1" = "$store_out2" ] \
  && grep -q '1 hit(s), 0 miss(es), 0 write(s)' "$store_dir/err2" \
  || { echo "store smoke failed:"; cat "$store_dir/err1" "$store_dir/err2"
       exit 1; }
rm -rf "$store_dir"
echo "store smoke passed"

# Concurrent serve smoke: N TCP clients against a spawned server with a
# worker pool — request/response pairing, stats balance, clean shutdown
# (tools/serve_load_smoke.py).
if command -v python3 >/dev/null; then
  python3 tools/serve_load_smoke.py --vifc "$BUILD_DIR/vifc" \
    --clients 4 --requests 8 --workers 4
  echo "concurrent serve smoke passed"
else
  echo "python3 not found; skipping concurrent serve smoke"
fi

# Wire-format drift check: every emitted JSON field must be documented in
# docs/SCHEMA.md (tools/schema_check.py).
if command -v python3 >/dev/null; then
  python3 tools/schema_check.py
else
  echo "python3 not found; skipping schema check"
fi

# Bench smoke: the perf binaries must keep running end-to-end so they can't
# silently rot between perf PRs. Committed baselines live in
# bench/baselines/ (see bench/baselines/README.md for how to regenerate).
# Skipped under sanitizers: instrumented timings are meaningless.
if [ -n "$SANITIZE" ]; then
  echo "sanitized build ($SANITIZE); skipping bench smoke and compare"
elif [ -x "$BUILD_DIR/bench_fig5" ]; then
  "$BUILD_DIR/bench_fig5" --benchmark_min_time=0.01x >/dev/null
  echo "bench smoke passed (bench_fig5)"
else
  echo "bench_fig5 not built (Google Benchmark absent); skipping bench smoke"
fi

# Opt-in bench regression check: VIFC_BENCH_COMPARE=1 re-runs the key
# binaries and diffs them against bench/baselines/ via
# tools/bench_compare.py. Off by default — baselines are machine-
# dependent, so this only means something on the machine that produced
# them. Tune the allowed slowdown with VIFC_BENCH_TOLERANCE (ratio).
if [ -z "$SANITIZE" ] && [ "${VIFC_BENCH_COMPARE:-0}" = "1" ] &&
   [ -x "$BUILD_DIR/bench_fig5" ]; then
  mkdir -p "$BUILD_DIR/bench-json"
  for b in bench_fig5 bench_scaling bench_alfp bench_ablation \
           bench_bitset bench_serve bench_query bench_incremental; do
    name=$(sed -e 's/bench_fig5/BENCH_closure/' -e 's/bench_/BENCH_/' <<<"$b")
    "$BUILD_DIR/$b" --benchmark_format=json --benchmark_min_time=0.1 \
      2>/dev/null > "$BUILD_DIR/bench-json/$name.json"
  done
  python3 tools/bench_compare.py "$BUILD_DIR"/bench-json/*.json \
    --baselines bench/baselines \
    --tolerance "${VIFC_BENCH_TOLERANCE:-1.5}"
  echo "bench compare passed"
fi
