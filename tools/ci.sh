#!/usr/bin/env bash
# Tier-1 verify, as run by CI (.github/workflows/ci.yml) and locally.
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DVIFC_WERROR=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

# Bench smoke: the perf binaries must keep running end-to-end so they can't
# silently rot between perf PRs. Committed baselines live in
# bench/baselines/ (see bench/baselines/README.md for how to regenerate).
if [ -x "$BUILD_DIR/bench_fig5" ]; then
  "$BUILD_DIR/bench_fig5" --benchmark_min_time=0.01x >/dev/null
  echo "bench smoke passed (bench_fig5)"
else
  echo "bench_fig5 not built (Google Benchmark absent); skipping bench smoke"
fi
