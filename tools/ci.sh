#!/usr/bin/env bash
# Tier-1 verify, as run by CI (.github/workflows/ci.yml) and locally.
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DVIFC_WERROR=ON
cmake --build "$BUILD_DIR" -j"$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"
