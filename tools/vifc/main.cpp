//===- tools/vifc/main.cpp - Command-line driver --------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vifc: parse, check, simulate, analyze and serve VHDL1 sources.
///
///   vifc check   [--statements] FILE...    parse + elaborate
///   vifc sim     [--deltas N] [--vcd F] FILE
///   vifc flows   [--improved] [--end-out] [--kemmerer|--alfp] [--dot] FILE...
///   vifc rm      FILE...                   local and global matrices
///   vifc report  [--forbid A,B]... FILE... covert-channel audit report
///   vifc query   --from A --to B FILE...   point reachability + witness
///   vifc datalog FILE.alfp                 solve ALFP, print ?-queries
///   vifc serve   [--cache N] [--listen PORT]
///
/// FILE may be "-" for stdin. With several FILEs or --json the command
/// runs as a batch over the driver layer's thread pool; single-file text
/// output is byte-identical to the historical format. All JSON output is
/// the versioned vifc.v1 wire format (docs/SCHEMA.md); `serve` speaks
/// line-delimited vifc.v1 requests/responses (docs/SERVER.md).
///
/// Every command is a thin adapter over vifc::driver (AnalysisSession for
/// one design, Batch + SessionCache for many, Server for serve); the
/// pipeline itself lives in src/driver.
///
//===----------------------------------------------------------------------===//

#include "alfp/AlfpParser.h"
#include "driver/AnalysisSession.h"
#include "driver/ArtifactStore.h"
#include "driver/Batch.h"
#include "driver/Serialize.h"
#include "driver/Serve.h"
#include "driver/SessionCache.h"
#include "driver/V1b.h"
#include "ifa/Report.h"
#include "sim/Simulator.h"
#include "sim/VcdWriter.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace vif;
using driver::AnalysisSession;

namespace {

void printUsage(std::ostream &OS) {
  OS << "usage: vifc <command> [options] [<file|->...]\n"
        "commands:\n"
        "  check   parse and elaborate, reporting diagnostics\n"
        "  sim     simulate to quiescence and print final signal values\n"
        "  flows   print the information-flow graph (edges, or --dot)\n"
        "  rm      print the local and global resource matrices\n"
        "  report  write a covert-channel audit report\n"
        "  query   answer a point reachability query (--from/--to) with a\n"
        "          shortest witness path and both reachable sets\n"
        "  datalog solve an ALFP/Datalog file and print ?-queried "
        "relations\n"
        "  serve   long-lived analysis server: line-delimited vifc.v1 JSON\n"
        "          requests on stdin (or --listen), warm sessions cached\n"
        "          across requests (docs/SERVER.md)\n"
        "options (applicable commands in parentheses):\n"
        "  --statements   input is a statement program, not a design\n"
        "                 (every command except datalog)\n"
        "  --improved     apply the Table 9 improvement (incoming/outgoing"
        " nodes)\n"
        "                 (flows, rm, report, query, serve)\n"
        "  --end-out      treat program end as an outgoing sync point\n"
        "                 (flows, rm, report, query, serve)\n"
        "  --from NODE    (query) the flow source to ask about; required\n"
        "  --to NODE      (query) the flow sink to ask about; required\n"
        "  --kemmerer     use Kemmerer's transitive-closure method (flows)\n"
        "  --alfp         compute the closure via the ALFP engine (flows)\n"
        "  --dot          emit Graphviz DOT (flows, one FILE, no --json)\n"
        "  --deltas N     delta-cycle budget for sim (default 65536)\n"
        "  --vcd FILE     write a VCD waveform of the simulation (sim)\n"
        "  --forbid A,B   (report) forbid the flow A -> B; repeatable;\n"
        "                 the exit code is 1 when a policy is violated\n"
        "  --json         emit one vifc.v1 JSON document (every command\n"
        "                 except serve; docs/SCHEMA.md)\n"
        "  --format FMT   response format: 'json', or 'v1b' for binary\n"
        "                 columnar frames, one per FILE (check/flows/rm/\n"
        "                 report/query; --format=v1b also works; "
        "docs/SCHEMA.md)\n"
        "  --jobs N       worker threads (check/flows/rm/report/query):"
        " designs\n"
        "                 in batch mode, per-process solver fan-out on a\n"
        "                 single FILE; 0 = auto (default: up to 8)\n"
        "  --cache N      (serve) session-cache capacity in entries "
        "(default 32)\n"
        "  --cache-bytes B (serve) session-cache byte budget, optional\n"
        "                 k/m/g suffix (e.g. 256m); 0 = unlimited "
        "(default)\n"
        "  --store DIR    persist analysis artifacts under DIR and reuse\n"
        "                 them across runs (check/flows/rm/report/query/\n"
        "                 serve; docs/SCHEMA.md describes the format)\n"
        "  --workers N    (serve --listen) TCP worker threads; 0 = auto\n"
        "                 (default: up to 8)\n"
        "  --listen PORT  (serve) accept TCP connections on 127.0.0.1:PORT\n"
        "                 instead of reading stdin; 0 picks an ephemeral\n"
        "                 port (printed on stderr once bound)\n"
        "  --help, -h     print this help and exit 0\n"
        "Several FILEs run as a batch; --json also works on one FILE.\n";
}

int usage() {
  printUsage(std::cerr);
  return 2;
}

struct Options {
  std::string Command;
  std::vector<std::string> Files;
  bool Statements = false;
  bool Improved = false;
  bool EndOut = false;
  bool Kemmerer = false;
  bool Alfp = false;
  bool Dot = false;
  bool Json = false;
  /// --format=v1b: emit binary v1b frames instead of text/JSON.
  bool V1bOut = false;
  unsigned Deltas = 1u << 16;
  unsigned Jobs = 0;
  bool JobsGiven = false;
  unsigned CacheCapacity = driver::SessionCache::DefaultCapacity;
  /// --cache-bytes: session-cache byte budget; 0 = unlimited.
  unsigned long long CacheBytes = 0;
  /// --workers: TCP worker threads for serve --listen; 0 = auto.
  unsigned Workers = 0;
  /// --store: on-disk artifact store directory; empty = disabled.
  std::string StoreDir;
  unsigned ListenPort = 0;
  bool ListenGiven = false;
  /// query: the --from / --to node pair (both required).
  std::string QueryFrom;
  std::string QueryTo;
  bool FromGiven = false;
  bool ToGiven = false;
  std::string VcdPath;
  std::vector<std::pair<std::string, std::string>> Forbidden;

  driver::SessionOptions session() const {
    driver::SessionOptions S;
    S.Statements = Statements;
    S.Ifa.Improved = Improved;
    S.Ifa.ProgramEndOutgoing = EndOut;
    // Single-file operation: --jobs parallelizes the per-process rd
    // fixpoints inside the one analysis (0 = auto). Batch operation
    // overrides this back to 1 — there the pool fans out across designs
    // and nesting both levels would oversubscribe.
    if (JobsGiven)
      S.Ifa.RD.Jobs = Jobs ? Jobs : defaultJobs();
    return S;
  }

  static unsigned defaultJobs() {
    unsigned HW = std::thread::hardware_concurrency();
    return std::min(HW ? HW : 1u, 8u);
  }
};

/// Which commands accept which option. One row per flag; commands as a
/// space-delimited word list, checked by whole word. Keep in sync with
/// printUsage() — tests/cli_smoke.cmake exercises the mismatch
/// diagnostics.
struct FlagSpec {
  const char *Flag;
  const char *Commands;
};

const FlagSpec FlagSpecs[] = {
    {"--statements", "check sim flows rm report query serve"},
    {"--improved", "flows rm report query serve"},
    {"--end-out", "flows rm report query serve"},
    {"--kemmerer", "flows"},
    {"--alfp", "flows"},
    {"--dot", "flows"},
    {"--deltas", "sim"},
    {"--vcd", "sim"},
    {"--forbid", "report"},
    {"--from", "query"},
    {"--to", "query"},
    {"--json", "check sim flows rm report query datalog"},
    {"--format", "check flows rm report query"},
    {"--jobs", "check flows rm report query"},
    {"--cache", "serve"},
    {"--cache-bytes", "serve"},
    {"--store", "check flows rm report query serve"},
    {"--workers", "serve"},
    {"--listen", "serve"},
};

/// Diagnoses flags given to a command they don't apply to. Returns true
/// when \p Flag may be used with \p Command.
bool checkFlagApplies(const std::string &Command, const std::string &Flag) {
  for (const FlagSpec &S : FlagSpecs) {
    if (Flag != S.Flag)
      continue;
    std::string Commands = std::string(" ") + S.Commands + " ";
    if (Commands.find(" " + Command + " ") != std::string::npos)
      return true;
    std::cerr << "error: option '" << Flag << "' does not apply to '"
              << Command << "' (applies to: " << S.Commands << ")\n";
    return false;
  }
  return true; // not a registered flag; caller diagnoses unknown options
}

/// Prints the session's diagnostics the way the historical CLI did: the
/// cannot-read message first (if any), then every parse/elaboration
/// diagnostic.
void printDiags(AnalysisSession &S) {
  if (S.unreadable())
    std::cerr << "error: cannot read '" << S.name() << "'\n";
  S.diagnostics().print(std::cerr);
}

/// Loads the single input through the pipeline; nullptr (after printing
/// diagnostics) on failure.
const ElaboratedProgram *loadSingle(AnalysisSession &S) {
  const ElaboratedProgram *P = S.program();
  printDiags(S);
  return P;
}

/// The CLI-owned `--store DIR` state: the on-disk artifact store plus the
/// per-process artifact table it backs, attached to whichever session or
/// batch the command runs. Disabled (all no-ops) when DIR is empty.
struct StoreContext {
  std::unique_ptr<driver::ArtifactStore> Store;
  ProcessArtifactTable Table;

  explicit StoreContext(const std::string &Dir) {
    if (Dir.empty())
      return;
    Store = std::make_unique<driver::ArtifactStore>(Dir);
    if (!Store->usable())
      std::cerr << "warning: cannot use artifact store directory '" << Dir
                << "'; continuing without persistence\n";
    Table.setBacking(Store.get());
  }

  void attach(AnalysisSession &S) {
    if (Store)
      S.setArtifacts(&Table, Store.get());
  }

  /// The one-line store summary printed to stderr after non-JSON runs, so
  /// scripted callers can observe hit/miss traffic without parsing JSON.
  void printSummary() const {
    if (!Store)
      return;
    driver::ArtifactStore::Counters C = Store->counters();
    std::cerr << "vifc: store: " << C.Hits << " hit(s), " << C.Misses
              << " miss(es), " << C.Writes << " write(s), " << C.BytesRead
              << " B read, " << C.BytesWritten << " B written\n";
  }
};

int cmdCheck(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  StoreContext SC(Opt.StoreDir);
  SC.attach(S);
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  std::cout << "ok: " << Program->Processes.size() << " process(es), "
            << Program->Signals.size() << " signal(s), "
            << Program->Variables.size() << " variable(s)\n";
  SC.printSummary();
  return 0;
}

int cmdSim(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  Simulator::Options SimOpts;
  SimOpts.RecordTrace = !Opt.VcdPath.empty();
  Simulator Sim(*Program, SimOpts);
  SimStatus Status = Sim.run(Opt.Deltas);
  if (Opt.Json) {
    driver::SimDocument Doc;
    Doc.File = Opt.Files[0];
    Doc.Status = simStatusName(Status);
    Doc.Deltas = Sim.deltasExecuted();
    if (Status == SimStatus::Stuck)
      Doc.StuckReason = Sim.stuckReason();
    for (const ElabSignal &Sig : Program->Signals)
      Doc.Signals.push_back({Sig.UniqueName, Sim.presentValue(Sig.Id).str()});
    driver::writeSimDocument(std::cout, Doc);
  } else {
    std::cout << "status: " << simStatusName(Status) << " after "
              << Sim.deltasExecuted() << " delta cycle(s)\n";
    if (Status == SimStatus::Stuck)
      std::cout << "reason: " << Sim.stuckReason() << '\n';
    for (const ElabSignal &Sig : Program->Signals)
      std::cout << Sig.UniqueName << " = " << Sim.presentValue(Sig.Id).str()
                << '\n';
  }
  if (!Opt.VcdPath.empty()) {
    if (Opt.VcdPath == "-") {
      writeVcd(std::cout, *Program, Sim);
    } else {
      std::ofstream VcdOut(Opt.VcdPath);
      if (!VcdOut) {
        std::cerr << "error: cannot write '" << Opt.VcdPath << "'\n";
        return 1;
      }
      writeVcd(VcdOut, *Program, Sim);
    }
  }
  return Status == SimStatus::Stuck ? 1 : 0;
}

int cmdFlows(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  StoreContext SC(Opt.StoreDir);
  SC.attach(S);
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;

  const Digraph *Graph = nullptr;
  Digraph AlfpGraph;
  std::string Title;
  if (Opt.Kemmerer) {
    Graph = &S.kemmerer()->Graph;
    Title = "kemmerer";
  } else if (Opt.Alfp) {
    const AlfpClosureResult *A = S.alfp();
    if (!A->Solved) {
      std::cerr << "alfp error: " << A->Error << '\n';
      return 1;
    }
    AlfpGraph = extractFlowGraph(A->RMgl, *Program);
    Graph = &AlfpGraph;
    Title = "flows-alfp";
  } else {
    Graph = &S.ifa()->Graph;
    Title = "flows";
  }
  if (Opt.Dot) {
    Graph->printDOT(std::cout, Title);
    return 0;
  }
  std::cout << Graph->numNodes() << " node(s), " << Graph->numEdges()
            << " edge(s)\n";
  Graph->forEachSortedEdge([](std::string_view From, std::string_view To) {
    std::cout << From << " -> " << To << '\n';
  });
  SC.printSummary();
  return 0;
}

int cmdRM(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  StoreContext SC(Opt.StoreDir);
  SC.attach(S);
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  const IFAResult *R = S.ifa();
  std::cout << "== RMlo (" << R->RMlo.size() << " entries)\n";
  R->RMlo.print(std::cout, *Program);
  std::cout << "== RMgl (" << R->RMgl.size() << " entries)\n";
  R->RMgl.print(std::cout, *Program);
  SC.printSummary();
  return 0;
}

int cmdReport(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  StoreContext SC(Opt.StoreDir);
  SC.attach(S);
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  const IFAResult *R = S.ifa();
  ReportOptions RepOpts;
  for (const auto &[From, To] : Opt.Forbidden)
    RepOpts.Policy.Forbidden.push_back({From, To});
  std::vector<PolicyViolation> Violations =
      checkFlowPolicy(R->Graph, RepOpts.Policy);
  RepOpts.Violations = &Violations;
  writeAuditReport(std::cout, *Program, *R, RepOpts);
  SC.printSummary();
  return Violations.empty() ? 0 : 1;
}

int cmdDatalog(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const std::string *Source = S.source();
  if (!Source) {
    std::cerr << "error: cannot read '" << Opt.Files[0] << "'\n";
    return 1;
  }
  DiagnosticEngine Diags;
  alfp::ParsedProgram PP = alfp::parseAlfp(*Source, Diags);
  Diags.print(std::cerr);
  if (Diags.hasErrors())
    return 1;
  std::string Error;
  if (!PP.P.solve(&Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }
  if (Opt.Json) {
    std::vector<driver::DatalogRelation> Relations;
    for (alfp::RelId Rel : PP.Queries) {
      driver::DatalogRelation R;
      R.Name = PP.P.relationName(Rel);
      R.Arity = PP.P.relationArity(Rel);
      for (const alfp::Atom *Row : PP.P.tuples(Rel)) {
        std::vector<std::string> Tuple;
        Tuple.reserve(R.Arity);
        for (unsigned I = 0; I < R.Arity; ++I)
          Tuple.push_back(PP.P.atoms().name(Row[I]));
        R.Tuples.push_back(std::move(Tuple));
      }
      std::sort(R.Tuples.begin(), R.Tuples.end());
      Relations.push_back(std::move(R));
    }
    driver::writeDatalogDocument(std::cout, Opt.Files[0], Relations,
                                 PP.P.derivedCount());
    return 0;
  }
  for (alfp::RelId Rel : PP.Queries)
    std::cout << alfp::dumpRelation(PP.P, Rel);
  if (PP.Queries.empty())
    std::cout << "(no ?-queries; " << PP.P.derivedCount()
              << " tuples derived)\n";
  return 0;
}

int cmdServe(const Options &Opt) {
  driver::ServeOptions SO;
  SO.CacheCapacity = Opt.CacheCapacity;
  SO.CacheBytes = static_cast<size_t>(Opt.CacheBytes);
  SO.Workers = Opt.Workers;
  SO.Session = Opt.session();
  SO.StoreDir = Opt.StoreDir;
  // Printed once the socket is bound — with --listen 0 the ephemeral
  // port is only known then (tools/serve_load_smoke.py parses this
  // line).
  SO.OnListening = [](uint16_t Port) {
    std::cerr << "vifc serve: listening on 127.0.0.1:" << Port << '\n';
  };
  driver::Server Server(SO);
  if (Opt.ListenGiven) {
    std::string Error;
    if (!Server.listenAndServe(static_cast<uint16_t>(Opt.ListenPort),
                               &Error)) {
      std::cerr << "error: " << Error << '\n';
      return 1;
    }
    return 0;
  }
  Server.run(std::cin, std::cout);
  return 0;
}

/// Multi-FILE and/or --json operation: run the batch engine — through a
/// per-invocation content-addressed session cache, so duplicate inputs
/// are analyzed once — and render.
int cmdBatch(const Options &Opt, driver::BatchMode Mode) {
  driver::SessionCache Cache;
  StoreContext SC(Opt.StoreDir);
  if (SC.Store)
    Cache.setArtifacts(&SC.Table, SC.Store.get());
  driver::BatchOptions B;
  B.Mode = Mode;
  B.Method = Opt.Kemmerer ? driver::FlowMethod::Kemmerer
             : Opt.Alfp   ? driver::FlowMethod::Alfp
                          : driver::FlowMethod::Native;
  B.Session = Opt.session();
  // --jobs fans out across designs when there are several; keep each
  // design's rd solvers serial then so the two pool levels don't
  // multiply. With a single design (`--json FILE`) the design pool is
  // one worker, so the whole budget goes to the solvers instead.
  if (Opt.Files.size() > 1)
    B.Session.Ifa.RD.Jobs = 1;
  for (const auto &[From, To] : Opt.Forbidden)
    B.Policy.Forbidden.push_back({From, To});
  B.QueryFrom = Opt.QueryFrom;
  B.QueryTo = Opt.QueryTo;
  B.Jobs = Opt.Jobs;
  B.CaptureRenderedText = !Opt.Json && !Opt.V1bOut;
  B.Cache = &Cache;
  if (SC.Store) {
    B.Artifacts = &SC.Table;
    B.Store = SC.Store.get();
  }

  std::vector<driver::BatchInput> Inputs;
  Inputs.reserve(Opt.Files.size());
  for (const std::string &File : Opt.Files)
    Inputs.push_back({File, std::nullopt});

  driver::BatchResult R = driver::runBatch(Inputs, B);
  if (Opt.V1bOut)
    driver::printBatchV1b(std::cout, R, B);
  else if (Opt.Json)
    driver::printBatchJson(std::cout, R, B);
  else {
    driver::printBatchText(std::cout, R, B);
    SC.printSummary();
  }

  bool Bad = !R.allOk() ||
             (Mode == driver::BatchMode::Report && R.NumViolations != 0);
  return Bad ? 1 : 0;
}

/// Parses a byte-size option value: a non-negative integer with an
/// optional k/m/g (binary, case-insensitive) suffix, e.g. "64m".
bool parseByteSize(const std::string &Flag, const std::string &Value,
                   unsigned long long &Out) {
  std::string Digits = Value;
  unsigned long long Scale = 1;
  if (!Digits.empty()) {
    switch (Digits.back()) {
    case 'k': case 'K': Scale = 1ull << 10; break;
    case 'm': case 'M': Scale = 1ull << 20; break;
    case 'g': case 'G': Scale = 1ull << 30; break;
    default: break;
    }
    if (Scale != 1)
      Digits.pop_back();
  }
  if (Digits.empty() ||
      Digits.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: option '" << Flag
              << "' expects BYTES with an optional k/m/g suffix, got '"
              << Value << "'\n";
    return false;
  }
  errno = 0;
  unsigned long long V = std::strtoull(Digits.c_str(), nullptr, 10);
  if (errno == ERANGE || V > ~0ull / Scale) {
    std::cerr << "error: option '" << Flag << "' value '" << Value
              << "' is out of range\n";
    return false;
  }
  Out = V * Scale;
  return true;
}

/// Parses a non-negative integer option value; reports and fails on
/// malformed or out-of-range input instead of aborting in std::stoul.
bool parseCount(const std::string &Flag, const std::string &Value,
                unsigned &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: option '" << Flag
              << "' expects a non-negative integer, got '" << Value << "'\n";
    return false;
  }
  errno = 0;
  unsigned long V = std::strtoul(Value.c_str(), nullptr, 10);
  if (errno == ERANGE || V > UINT_MAX) {
    std::cerr << "error: option '" << Flag << "' value '" << Value
              << "' is out of range\n";
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty())
    return usage();
  // Help anywhere on the command line prints usage to stdout, exit 0 —
  // unknown flags/commands keep printing to stderr, exit 2.
  for (const std::string &A : Args)
    if (A == "--help" || A == "-h") {
      printUsage(std::cout);
      return 0;
    }
  if (Args[0] == "help") {
    printUsage(std::cout);
    return 0;
  }
  Opt.Command = Args[0];
  // Validate the command before its flags, so `vifc frobnicate --json`
  // says "unknown command", not something misleading about --json.
  const char *Commands[] = {"check",  "sim",   "flows",   "rm",
                            "report", "query", "datalog", "serve"};
  if (std::find(std::begin(Commands), std::end(Commands), Opt.Command) ==
      std::end(Commands)) {
    std::cerr << "unknown command '" << Opt.Command << "'\n";
    return usage();
  }

  // Option values are consumed via this helper so a trailing --deltas /
  // --vcd / --forbid / --jobs / --cache / --listen without a value is a
  // diagnosed error, not a silently missing option.
  size_t I = 1;
  auto nextValue = [&](const std::string &Flag,
                       std::string &Out) -> bool {
    if (I + 1 >= Args.size()) {
      std::cerr << "error: option '" << Flag << "' requires a value\n";
      return false;
    }
    Out = Args[++I];
    return true;
  };

  for (; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    std::string Value;
    if (!A.empty() && A[0] == '-' && A != "-" &&
        !checkFlagApplies(Opt.Command, A))
      return usage();
    if (A == "--statements")
      Opt.Statements = true;
    else if (A == "--improved")
      Opt.Improved = true;
    else if (A == "--end-out")
      Opt.EndOut = true;
    else if (A == "--kemmerer")
      Opt.Kemmerer = true;
    else if (A == "--alfp")
      Opt.Alfp = true;
    else if (A == "--dot")
      Opt.Dot = true;
    else if (A == "--json")
      Opt.Json = true;
    else if (A == "--format" || A.rfind("--format=", 0) == 0) {
      if (A != "--format") {
        // Inline form --format=FMT; re-check applicability under the
        // registered spelling, which the generic check above missed.
        if (!checkFlagApplies(Opt.Command, "--format"))
          return usage();
        Value = A.substr(9);
      } else if (!nextValue(A, Value))
        return usage();
      if (Value == "json")
        Opt.Json = true;
      else if (Value == "v1b")
        Opt.V1bOut = true;
      else {
        std::cerr << "error: option '--format' expects 'json' or 'v1b', "
                     "got '"
                  << Value << "'\n";
        return usage();
      }
    } else if (A == "--deltas") {
      if (!nextValue(A, Value) || !parseCount(A, Value, Opt.Deltas))
        return usage();
    } else if (A == "--jobs") {
      if (!nextValue(A, Value) || !parseCount(A, Value, Opt.Jobs))
        return usage();
      Opt.JobsGiven = true;
    } else if (A == "--cache") {
      if (!nextValue(A, Value) || !parseCount(A, Value, Opt.CacheCapacity))
        return usage();
      if (Opt.CacheCapacity == 0) {
        std::cerr << "error: option '--cache' expects at least 1 entry\n";
        return usage();
      }
    } else if (A == "--cache-bytes") {
      if (!nextValue(A, Value) || !parseByteSize(A, Value, Opt.CacheBytes))
        return usage();
    } else if (A == "--store") {
      if (!nextValue(A, Value))
        return usage();
      Opt.StoreDir = Value;
    } else if (A == "--workers") {
      if (!nextValue(A, Value) || !parseCount(A, Value, Opt.Workers))
        return usage();
    } else if (A == "--listen") {
      if (!nextValue(A, Value) || !parseCount(A, Value, Opt.ListenPort))
        return usage();
      if (Opt.ListenPort > 65535) {
        std::cerr << "error: option '--listen' expects a port in 0..65535 "
                     "(0 picks an ephemeral port)\n";
        return usage();
      }
      Opt.ListenGiven = true;
    } else if (A == "--vcd") {
      if (!nextValue(A, Value))
        return usage();
      Opt.VcdPath = Value;
    } else if (A == "--from") {
      if (!nextValue(A, Value))
        return usage();
      Opt.QueryFrom = Value;
      Opt.FromGiven = true;
    } else if (A == "--to") {
      if (!nextValue(A, Value))
        return usage();
      Opt.QueryTo = Value;
      Opt.ToGiven = true;
    } else if (A == "--forbid") {
      if (!nextValue(A, Value))
        return usage();
      size_t Comma = Value.find(',');
      if (Comma == std::string::npos) {
        std::cerr << "--forbid expects 'from,to'\n";
        return usage();
      }
      Opt.Forbidden.emplace_back(Value.substr(0, Comma),
                                 Value.substr(Comma + 1));
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::cerr << "unknown option '" << A << "'\n";
      return usage();
    } else
      Opt.Files.push_back(A);
  }

  if (Opt.Command == "serve") {
    if (!Opt.Files.empty()) {
      std::cerr << "error: 'serve' takes no FILE arguments (requests name "
                   "their inputs)\n";
      return usage();
    }
    return cmdServe(Opt);
  }

  if (Opt.Files.empty())
    return usage();
  // stdin is a single stream: two sessions draining it (possibly from
  // different batch workers) would split it nondeterministically.
  if (std::count(Opt.Files.begin(), Opt.Files.end(), "-") > 1) {
    std::cerr << "error: '-' (stdin) may be given at most once\n";
    return usage();
  }

  if (Opt.Command == "query" && (!Opt.FromGiven || !Opt.ToGiven)) {
    std::cerr << "error: 'query' requires both --from and --to\n";
    return usage();
  }

  bool SingleOnly = Opt.Command == "sim" || Opt.Command == "datalog";
  if (SingleOnly && Opt.Files.size() > 1) {
    std::cerr << "error: '" << Opt.Command
              << "' accepts exactly one FILE\n";
    return usage();
  }
  if (Opt.Json && Opt.VcdPath == "-") {
    std::cerr << "error: --vcd - (stdout) cannot be combined with --json\n";
    return usage();
  }
  if (Opt.Json && Opt.V1bOut) {
    std::cerr << "error: --json cannot be combined with --format=v1b\n";
    return usage();
  }
  if (Opt.Dot && (Opt.Json || Opt.V1bOut || Opt.Files.size() > 1)) {
    std::cerr << "error: --dot requires a single FILE without --json or "
                 "--format=v1b\n";
    return usage();
  }

  bool Batch =
      !SingleOnly && (Opt.Json || Opt.V1bOut || Opt.Files.size() > 1);
  if (Opt.Command == "check")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Check) : cmdCheck(Opt);
  if (Opt.Command == "sim")
    return cmdSim(Opt);
  if (Opt.Command == "flows")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Flows) : cmdFlows(Opt);
  if (Opt.Command == "rm")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Matrices) : cmdRM(Opt);
  if (Opt.Command == "report")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Report)
                 : cmdReport(Opt);
  // query is new with the batch engine, so it has no historical
  // single-file text format to preserve: every shape runs through it.
  if (Opt.Command == "query")
    return cmdBatch(Opt, driver::BatchMode::Query);
  // The command set was validated up front, so this is datalog.
  return cmdDatalog(Opt);
}
