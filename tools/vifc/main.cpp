//===- tools/vifc/main.cpp - Command-line driver --------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vifc: parse, check, simulate and analyze VHDL1 sources.
///
///   vifc check  [--statements] FILE...     parse + elaborate
///   vifc sim    [--deltas N] FILE          simulate to quiescence
///   vifc flows  [--improved] [--end-out] [--kemmerer] [--dot] FILE...
///   vifc rm     FILE...                    print local and global matrices
///
/// FILE may be "-" for stdin. With several FILEs or --json the command
/// runs as a batch over the driver layer's thread pool; single-file text
/// output is byte-identical to the historical format.
///
/// Every command is a thin adapter over vifc::driver (AnalysisSession for
/// one design, Batch for many); the pipeline itself lives in src/driver.
///
//===----------------------------------------------------------------------===//

#include "alfp/AlfpParser.h"
#include "driver/AnalysisSession.h"
#include "driver/Batch.h"
#include "ifa/Report.h"
#include "sim/Simulator.h"
#include "sim/VcdWriter.h"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace vif;
using driver::AnalysisSession;

namespace {

int usage() {
  std::cerr
      << "usage: vifc <command> [options] <file|->...\n"
         "commands:\n"
         "  check   parse and elaborate, reporting diagnostics\n"
         "  sim     simulate to quiescence and print final signal values\n"
         "  flows   print the information-flow graph (edges, or --dot)\n"
         "  rm      print the local and global resource matrices\n"
         "  report  write a covert-channel audit report\n"
         "  datalog solve an ALFP/Datalog file and print ?-queried "
         "relations\n"
         "options:\n"
         "  --statements   input is a statement program, not a design\n"
         "  --improved     apply the Table 9 improvement (incoming/outgoing"
         " nodes)\n"
         "  --end-out      treat program end as an outgoing sync point\n"
         "  --kemmerer     use Kemmerer's transitive-closure method\n"
         "  --alfp         compute the closure via the ALFP engine\n"
         "  --dot          emit Graphviz DOT\n"
         "  --deltas N     delta-cycle budget for sim (default 65536)\n"
         "  --vcd FILE     write a VCD waveform of the simulation\n"
         "  --forbid A,B   (report) forbid the flow A -> B; repeatable;\n"
         "                 the exit code is 1 when a policy is violated\n"
         "  --json         emit one JSON document (check/flows/rm/report)\n"
         "  --jobs N       batch worker threads (default: up to 8)\n"
         "Several FILEs run as a batch; --json also works on one FILE.\n";
  return 2;
}

struct Options {
  std::string Command;
  std::vector<std::string> Files;
  bool Statements = false;
  bool Improved = false;
  bool EndOut = false;
  bool Kemmerer = false;
  bool Alfp = false;
  bool Dot = false;
  bool Json = false;
  unsigned Deltas = 1u << 16;
  unsigned Jobs = 0;
  bool JobsGiven = false;
  std::string VcdPath;
  std::vector<std::pair<std::string, std::string>> Forbidden;

  driver::SessionOptions session() const {
    driver::SessionOptions S;
    S.Statements = Statements;
    S.Ifa.Improved = Improved;
    S.Ifa.ProgramEndOutgoing = EndOut;
    return S;
  }
};

/// Prints the session's diagnostics the way the historical CLI did: the
/// cannot-read message first (if any), then every parse/elaboration
/// diagnostic.
void printDiags(AnalysisSession &S) {
  if (S.unreadable())
    std::cerr << "error: cannot read '" << S.name() << "'\n";
  S.diagnostics().print(std::cerr);
}

/// Loads the single input through the pipeline; nullptr (after printing
/// diagnostics) on failure.
const ElaboratedProgram *loadSingle(AnalysisSession &S) {
  const ElaboratedProgram *P = S.program();
  printDiags(S);
  return P;
}

int cmdCheck(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  std::cout << "ok: " << Program->Processes.size() << " process(es), "
            << Program->Signals.size() << " signal(s), "
            << Program->Variables.size() << " variable(s)\n";
  return 0;
}

int cmdSim(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  Simulator::Options SimOpts;
  SimOpts.RecordTrace = !Opt.VcdPath.empty();
  Simulator Sim(*Program, SimOpts);
  SimStatus Status = Sim.run(Opt.Deltas);
  std::cout << "status: " << simStatusName(Status) << " after "
            << Sim.deltasExecuted() << " delta cycle(s)\n";
  if (Status == SimStatus::Stuck)
    std::cout << "reason: " << Sim.stuckReason() << '\n';
  for (const ElabSignal &Sig : Program->Signals)
    std::cout << Sig.UniqueName << " = " << Sim.presentValue(Sig.Id).str()
              << '\n';
  if (!Opt.VcdPath.empty()) {
    if (Opt.VcdPath == "-") {
      writeVcd(std::cout, *Program, Sim);
    } else {
      std::ofstream VcdOut(Opt.VcdPath);
      if (!VcdOut) {
        std::cerr << "error: cannot write '" << Opt.VcdPath << "'\n";
        return 1;
      }
      writeVcd(VcdOut, *Program, Sim);
    }
  }
  return Status == SimStatus::Stuck ? 1 : 0;
}

int cmdFlows(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;

  const Digraph *Graph = nullptr;
  Digraph AlfpGraph;
  std::string Title;
  if (Opt.Kemmerer) {
    Graph = &S.kemmerer()->Graph;
    Title = "kemmerer";
  } else if (Opt.Alfp) {
    const AlfpClosureResult *A = S.alfp();
    if (!A->Solved) {
      std::cerr << "alfp error: " << A->Error << '\n';
      return 1;
    }
    AlfpGraph = extractFlowGraph(A->RMgl, *Program);
    Graph = &AlfpGraph;
    Title = "flows-alfp";
  } else {
    Graph = &S.ifa()->Graph;
    Title = "flows";
  }
  if (Opt.Dot) {
    Graph->printDOT(std::cout, Title);
    return 0;
  }
  std::cout << Graph->numNodes() << " node(s), " << Graph->numEdges()
            << " edge(s)\n";
  for (const auto &[From, To] : Graph->sortedEdges())
    std::cout << From << " -> " << To << '\n';
  return 0;
}

int cmdRM(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  const IFAResult *R = S.ifa();
  std::cout << "== RMlo (" << R->RMlo.size() << " entries)\n";
  R->RMlo.print(std::cout, *Program);
  std::cout << "== RMgl (" << R->RMgl.size() << " entries)\n";
  R->RMgl.print(std::cout, *Program);
  return 0;
}

int cmdReport(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const ElaboratedProgram *Program = loadSingle(S);
  if (!Program)
    return 1;
  const IFAResult *R = S.ifa();
  ReportOptions RepOpts;
  for (const auto &[From, To] : Opt.Forbidden)
    RepOpts.Policy.Forbidden.push_back({From, To});
  std::vector<PolicyViolation> Violations =
      checkFlowPolicy(R->Graph, RepOpts.Policy);
  RepOpts.Violations = &Violations;
  writeAuditReport(std::cout, *Program, *R, RepOpts);
  return Violations.empty() ? 0 : 1;
}

int cmdDatalog(const Options &Opt) {
  AnalysisSession S = AnalysisSession::fromFile(Opt.Files[0], Opt.session());
  const std::string *Source = S.source();
  if (!Source) {
    std::cerr << "error: cannot read '" << Opt.Files[0] << "'\n";
    return 1;
  }
  DiagnosticEngine Diags;
  alfp::ParsedProgram PP = alfp::parseAlfp(*Source, Diags);
  Diags.print(std::cerr);
  if (Diags.hasErrors())
    return 1;
  std::string Error;
  if (!PP.P.solve(&Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }
  for (alfp::RelId Rel : PP.Queries)
    std::cout << alfp::dumpRelation(PP.P, Rel);
  if (PP.Queries.empty())
    std::cout << "(no ?-queries; " << PP.P.derivedCount()
              << " tuples derived)\n";
  return 0;
}

/// Multi-FILE and/or --json operation: run the batch engine and render.
int cmdBatch(const Options &Opt, driver::BatchMode Mode) {
  driver::BatchOptions B;
  B.Mode = Mode;
  B.Method = Opt.Kemmerer ? driver::FlowMethod::Kemmerer
             : Opt.Alfp   ? driver::FlowMethod::Alfp
                          : driver::FlowMethod::Native;
  B.Session = Opt.session();
  for (const auto &[From, To] : Opt.Forbidden)
    B.Policy.Forbidden.push_back({From, To});
  B.Jobs = Opt.Jobs;
  B.CaptureRenderedText = !Opt.Json;

  std::vector<driver::BatchInput> Inputs;
  Inputs.reserve(Opt.Files.size());
  for (const std::string &File : Opt.Files)
    Inputs.push_back({File, std::nullopt});

  driver::BatchResult R = driver::runBatch(Inputs, B);
  if (Opt.Json)
    driver::printBatchJson(std::cout, R, B);
  else
    driver::printBatchText(std::cout, R, B);

  bool Bad = !R.allOk() ||
             (Mode == driver::BatchMode::Report && R.NumViolations != 0);
  return Bad ? 1 : 0;
}

/// Parses a non-negative integer option value; reports and fails on
/// malformed or out-of-range input instead of aborting in std::stoul.
bool parseCount(const std::string &Flag, const std::string &Value,
                unsigned &Out) {
  if (Value.empty() ||
      Value.find_first_not_of("0123456789") != std::string::npos) {
    std::cerr << "error: option '" << Flag
              << "' expects a non-negative integer, got '" << Value << "'\n";
    return false;
  }
  errno = 0;
  unsigned long V = std::strtoul(Value.c_str(), nullptr, 10);
  if (errno == ERANGE || V > UINT_MAX) {
    std::cerr << "error: option '" << Flag << "' value '" << Value
              << "' is out of range\n";
    return false;
  }
  Out = static_cast<unsigned>(V);
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty())
    return usage();
  Opt.Command = Args[0];

  // Option values are consumed via this helper so a trailing --deltas /
  // --vcd / --forbid / --jobs without a value is a diagnosed error, not a
  // silently missing option.
  size_t I = 1;
  auto nextValue = [&](const std::string &Flag,
                       std::string &Out) -> bool {
    if (I + 1 >= Args.size()) {
      std::cerr << "error: option '" << Flag << "' requires a value\n";
      return false;
    }
    Out = Args[++I];
    return true;
  };

  for (; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    std::string Value;
    if (A == "--statements")
      Opt.Statements = true;
    else if (A == "--improved")
      Opt.Improved = true;
    else if (A == "--end-out")
      Opt.EndOut = true;
    else if (A == "--kemmerer")
      Opt.Kemmerer = true;
    else if (A == "--alfp")
      Opt.Alfp = true;
    else if (A == "--dot")
      Opt.Dot = true;
    else if (A == "--json")
      Opt.Json = true;
    else if (A == "--deltas") {
      if (!nextValue(A, Value) || !parseCount(A, Value, Opt.Deltas))
        return usage();
    } else if (A == "--jobs") {
      if (!nextValue(A, Value) || !parseCount(A, Value, Opt.Jobs))
        return usage();
      Opt.JobsGiven = true;
    } else if (A == "--vcd") {
      if (!nextValue(A, Value))
        return usage();
      Opt.VcdPath = Value;
    } else if (A == "--forbid") {
      if (!nextValue(A, Value))
        return usage();
      size_t Comma = Value.find(',');
      if (Comma == std::string::npos) {
        std::cerr << "--forbid expects 'from,to'\n";
        return usage();
      }
      Opt.Forbidden.emplace_back(Value.substr(0, Comma),
                                 Value.substr(Comma + 1));
    } else if (!A.empty() && A[0] == '-' && A != "-") {
      std::cerr << "unknown option '" << A << "'\n";
      return usage();
    } else
      Opt.Files.push_back(A);
  }
  if (Opt.Files.empty())
    return usage();
  // stdin is a single stream: two sessions draining it (possibly from
  // different batch workers) would split it nondeterministically.
  if (std::count(Opt.Files.begin(), Opt.Files.end(), "-") > 1) {
    std::cerr << "error: '-' (stdin) may be given at most once\n";
    return usage();
  }

  bool SingleOnly = Opt.Command == "sim" || Opt.Command == "datalog";
  if (SingleOnly && Opt.Files.size() > 1) {
    std::cerr << "error: '" << Opt.Command
              << "' accepts exactly one FILE\n";
    return usage();
  }
  if (SingleOnly && Opt.Json) {
    std::cerr << "error: --json is not supported by '" << Opt.Command
              << "'\n";
    return usage();
  }
  if (Opt.Dot && (Opt.Json || Opt.Files.size() > 1)) {
    std::cerr << "error: --dot requires a single FILE without --json\n";
    return usage();
  }

  bool Batch = Opt.Json || Opt.Files.size() > 1;
  if (Opt.JobsGiven && !Batch) {
    std::cerr << "error: --jobs only applies to batch operation "
                 "(several FILEs or --json)\n";
    return usage();
  }
  if (Opt.Command == "check")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Check) : cmdCheck(Opt);
  if (Opt.Command == "sim")
    return cmdSim(Opt);
  if (Opt.Command == "flows")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Flows) : cmdFlows(Opt);
  if (Opt.Command == "rm")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Matrices) : cmdRM(Opt);
  if (Opt.Command == "report")
    return Batch ? cmdBatch(Opt, driver::BatchMode::Report)
                 : cmdReport(Opt);
  if (Opt.Command == "datalog")
    return cmdDatalog(Opt);
  return usage();
}
