//===- tools/vifc/main.cpp - Command-line driver --------------------------===//
//
// Part of the vif project; see DESIGN.md for the paper reference.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// vifc: parse, check, simulate and analyze VHDL1 sources.
///
///   vifc check  [--statements] FILE        parse + elaborate
///   vifc sim    [--deltas N] FILE          simulate to quiescence
///   vifc flows  [--improved] [--end-out] [--kemmerer] [--dot] FILE
///   vifc rm     FILE                       print local and global matrices
///
/// FILE may be "-" for stdin.
///
//===----------------------------------------------------------------------===//

#include "alfp/AlfpParser.h"
#include "ifa/AlfpClosure.h"
#include "ifa/InformationFlow.h"
#include "ifa/Kemmerer.h"
#include "ifa/Report.h"
#include "parse/Parser.h"
#include "sim/Simulator.h"
#include "sim/VcdWriter.h"

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace vif;

namespace {

int usage() {
  std::cerr
      << "usage: vifc <command> [options] <file|->\n"
         "commands:\n"
         "  check   parse and elaborate, reporting diagnostics\n"
         "  sim     simulate to quiescence and print final signal values\n"
         "  flows   print the information-flow graph (edges, or --dot)\n"
         "  rm      print the local and global resource matrices\n"
         "  report  write a covert-channel audit report\n"
         "  datalog solve an ALFP/Datalog file and print ?-queried "
         "relations\n"
         "options:\n"
         "  --statements   input is a statement program, not a design\n"
         "  --improved     apply the Table 9 improvement (incoming/outgoing"
         " nodes)\n"
         "  --end-out      treat program end as an outgoing sync point\n"
         "  --kemmerer     use Kemmerer's transitive-closure method\n"
         "  --alfp         compute the closure via the ALFP engine\n"
         "  --dot          emit Graphviz DOT\n"
         "  --deltas N     delta-cycle budget for sim (default 65536)\n"
         "  --vcd FILE     write a VCD waveform of the simulation\n"
         "  --forbid A,B   (report) forbid the flow A -> B; repeatable;\n"
         "                 the exit code is 1 when a policy is violated\n";
  return 2;
}

std::string readInput(const std::string &Path, bool &Ok) {
  Ok = true;
  if (Path == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream In(Path);
  if (!In) {
    Ok = false;
    return "";
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

struct Options {
  std::string Command;
  std::string File;
  bool Statements = false;
  bool Improved = false;
  bool EndOut = false;
  bool Kemmerer = false;
  bool Alfp = false;
  bool Dot = false;
  unsigned Deltas = 1u << 16;
  std::string VcdPath;
  std::vector<std::pair<std::string, std::string>> Forbidden;
};

std::optional<ElaboratedProgram> load(const Options &Opt,
                                      DiagnosticEngine &Diags) {
  bool Ok = false;
  std::string Source = readInput(Opt.File, Ok);
  if (!Ok) {
    std::cerr << "error: cannot read '" << Opt.File << "'\n";
    return std::nullopt;
  }
  if (Opt.Statements) {
    StatementProgram Prog = parseStatementProgram(Source, Diags);
    if (Diags.hasErrors())
      return std::nullopt;
    return elaborateStatements(*Prog.Body, Diags, &Prog.Decls);
  }
  DesignFile File = parseDesign(Source, Diags);
  if (Diags.hasErrors())
    return std::nullopt;
  return elaborateDesign(File, Diags);
}

int cmdCheck(const Options &Opt) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> Program = load(Opt, Diags);
  Diags.print(std::cerr);
  if (!Program)
    return 1;
  std::cout << "ok: " << Program->Processes.size() << " process(es), "
            << Program->Signals.size() << " signal(s), "
            << Program->Variables.size() << " variable(s)\n";
  return 0;
}

int cmdSim(const Options &Opt) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> Program = load(Opt, Diags);
  Diags.print(std::cerr);
  if (!Program)
    return 1;
  Simulator::Options SimOpts;
  SimOpts.RecordTrace = !Opt.VcdPath.empty();
  Simulator Sim(*Program, SimOpts);
  SimStatus Status = Sim.run(Opt.Deltas);
  std::cout << "status: " << simStatusName(Status) << " after "
            << Sim.deltasExecuted() << " delta cycle(s)\n";
  if (Status == SimStatus::Stuck)
    std::cout << "reason: " << Sim.stuckReason() << '\n';
  for (const ElabSignal &S : Program->Signals)
    std::cout << S.UniqueName << " = " << Sim.presentValue(S.Id).str()
              << '\n';
  if (!Opt.VcdPath.empty()) {
    if (Opt.VcdPath == "-") {
      writeVcd(std::cout, *Program, Sim);
    } else {
      std::ofstream VcdOut(Opt.VcdPath);
      if (!VcdOut) {
        std::cerr << "error: cannot write '" << Opt.VcdPath << "'\n";
        return 1;
      }
      writeVcd(VcdOut, *Program, Sim);
    }
  }
  return Status == SimStatus::Stuck ? 1 : 0;
}

int cmdFlows(const Options &Opt) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> Program = load(Opt, Diags);
  Diags.print(std::cerr);
  if (!Program)
    return 1;
  ProgramCFG CFG = ProgramCFG::build(*Program);

  Digraph Graph;
  std::string Title;
  if (Opt.Kemmerer) {
    Graph = analyzeKemmerer(*Program, CFG).Graph;
    Title = "kemmerer";
  } else {
    IFAOptions IfaOpts;
    IfaOpts.Improved = Opt.Improved;
    IfaOpts.ProgramEndOutgoing = Opt.EndOut;
    IFAResult R = analyzeInformationFlow(*Program, CFG, IfaOpts);
    if (Opt.Alfp) {
      AlfpClosureResult A = closeWithAlfp(*Program, CFG, R, IfaOpts);
      if (!A.Solved) {
        std::cerr << "alfp error: " << A.Error << '\n';
        return 1;
      }
      Graph = extractFlowGraph(A.RMgl, *Program);
      Title = "flows-alfp";
    } else {
      Graph = R.Graph;
      Title = "flows";
    }
  }
  if (Opt.Dot) {
    Graph.printDOT(std::cout, Title);
    return 0;
  }
  std::cout << Graph.numNodes() << " node(s), " << Graph.numEdges()
            << " edge(s)\n";
  for (const auto &[From, To] : Graph.sortedEdges())
    std::cout << From << " -> " << To << '\n';
  return 0;
}

int cmdRM(const Options &Opt) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> Program = load(Opt, Diags);
  Diags.print(std::cerr);
  if (!Program)
    return 1;
  ProgramCFG CFG = ProgramCFG::build(*Program);
  IFAOptions IfaOpts;
  IfaOpts.Improved = Opt.Improved;
  IfaOpts.ProgramEndOutgoing = Opt.EndOut;
  IFAResult R = analyzeInformationFlow(*Program, CFG, IfaOpts);
  std::cout << "== RMlo (" << R.RMlo.size() << " entries)\n";
  R.RMlo.print(std::cout, *Program);
  std::cout << "== RMgl (" << R.RMgl.size() << " entries)\n";
  R.RMgl.print(std::cout, *Program);
  return 0;
}

int cmdReport(const Options &Opt) {
  DiagnosticEngine Diags;
  std::optional<ElaboratedProgram> Program = load(Opt, Diags);
  Diags.print(std::cerr);
  if (!Program)
    return 1;
  ProgramCFG CFG = ProgramCFG::build(*Program);
  IFAOptions IfaOpts;
  IfaOpts.Improved = Opt.Improved;
  IfaOpts.ProgramEndOutgoing = Opt.EndOut;
  IFAResult R = analyzeInformationFlow(*Program, CFG, IfaOpts);
  ReportOptions RepOpts;
  for (const auto &[From, To] : Opt.Forbidden)
    RepOpts.Policy.Forbidden.push_back({From, To});
  writeAuditReport(std::cout, *Program, R, RepOpts);
  return checkFlowPolicy(R.Graph, RepOpts.Policy).empty() ? 0 : 1;
}

int cmdDatalog(const Options &Opt) {
  bool Ok = false;
  std::string Source = readInput(Opt.File, Ok);
  if (!Ok) {
    std::cerr << "error: cannot read '" << Opt.File << "'\n";
    return 1;
  }
  DiagnosticEngine Diags;
  alfp::ParsedProgram PP = alfp::parseAlfp(Source, Diags);
  Diags.print(std::cerr);
  if (Diags.hasErrors())
    return 1;
  std::string Error;
  if (!PP.P.solve(&Error)) {
    std::cerr << "error: " << Error << '\n';
    return 1;
  }
  for (alfp::RelId Rel : PP.Queries)
    std::cout << alfp::dumpRelation(PP.P, Rel);
  if (PP.Queries.empty())
    std::cout << "(no ?-queries; " << PP.P.derivedCount()
              << " tuples derived)\n";
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  if (Args.empty())
    return usage();
  Opt.Command = Args[0];
  for (size_t I = 1; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    if (A == "--statements")
      Opt.Statements = true;
    else if (A == "--improved")
      Opt.Improved = true;
    else if (A == "--end-out")
      Opt.EndOut = true;
    else if (A == "--kemmerer")
      Opt.Kemmerer = true;
    else if (A == "--alfp")
      Opt.Alfp = true;
    else if (A == "--dot")
      Opt.Dot = true;
    else if (A == "--deltas" && I + 1 < Args.size())
      Opt.Deltas = static_cast<unsigned>(std::stoul(Args[++I]));
    else if (A == "--vcd" && I + 1 < Args.size())
      Opt.VcdPath = Args[++I];
    else if (A == "--forbid" && I + 1 < Args.size()) {
      std::string Pair = Args[++I];
      size_t Comma = Pair.find(',');
      if (Comma == std::string::npos) {
        std::cerr << "--forbid expects 'from,to'\n";
        return usage();
      }
      Opt.Forbidden.emplace_back(Pair.substr(0, Comma),
                                 Pair.substr(Comma + 1));
    }
    else if (!A.empty() && A[0] == '-' && A != "-") {
      std::cerr << "unknown option '" << A << "'\n";
      return usage();
    } else
      Opt.File = A;
  }
  if (Opt.File.empty())
    return usage();

  if (Opt.Command == "check")
    return cmdCheck(Opt);
  if (Opt.Command == "sim")
    return cmdSim(Opt);
  if (Opt.Command == "flows")
    return cmdFlows(Opt);
  if (Opt.Command == "rm")
    return cmdRM(Opt);
  if (Opt.Command == "report")
    return cmdReport(Opt);
  if (Opt.Command == "datalog")
    return cmdDatalog(Opt);
  return usage();
}
