#!/usr/bin/env python3
"""Concurrent-serve smoke: N TCP clients against a spawned `vifc serve`.

Spawns `vifc serve --listen 0 --workers W`, discovers the ephemeral port
from the `vifc serve: listening on 127.0.0.1:PORT` stderr line, then runs
N client threads issuing K request/response cycles each with unique ids.
Asserts every response pairs with its request (id echo, status ok), that
the final `stats` balances (hits + misses == analysis requests), and that
a `shutdown` request ends the process with exit status 0.

Run by tools/ci.sh; standalone:

    python3 tools/serve_load_smoke.py --vifc build/vifc
"""

import argparse
import json
import re
import socket
import subprocess
import sys
import threading

MUX_SOURCE = (
    "entity mux is port(d0 : in std_logic; d1 : in std_logic;"
    " sel : in std_logic; q : out std_logic); end mux;"
    " architecture rtl of mux is begin p : process begin"
    " if sel = '1' then q <= d1; else q <= d0; end if;"
    " wait on d0, d1, sel; end process p; end rtl;"
)

LISTENING_RE = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def request_line(rid, command, **members):
    doc = {"schema": "vifc.v1", "id": rid, "command": command}
    doc.update(members)
    return (json.dumps(doc) + "\n").encode()


def run_client(port, cid, requests, failures):
    try:
        with socket.create_connection(("127.0.0.1", port), timeout=60) as s:
            f = s.makefile("rwb")
            for r in range(requests):
                rid = cid * 1000 + r
                f.write(request_line(rid, "flows", source=MUX_SOURCE))
                f.flush()
                line = f.readline()
                doc = json.loads(line)
                if doc.get("id") != rid:
                    raise RuntimeError(
                        f"response id {doc.get('id')!r} for request {rid}"
                    )
                if doc.get("status") != "ok":
                    raise RuntimeError(f"status {doc.get('status')!r}: {doc}")
    except Exception as e:  # noqa: BLE001 - report, don't unwind the smoke
        failures.append(f"client {cid}: {e}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--vifc", default="build/vifc", help="vifc binary")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--requests", type=int, default=8)
    ap.add_argument("--workers", type=int, default=4)
    args = ap.parse_args()

    proc = subprocess.Popen(
        [args.vifc, "serve", "--listen", "0", "--workers", str(args.workers)],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )
    try:
        port = None
        for raw in proc.stderr:
            m = LISTENING_RE.search(raw.decode(errors="replace"))
            if m:
                port = int(m.group(1))
                break
        if port is None:
            print("serve_load_smoke: no listening line on stderr",
                  file=sys.stderr)
            return 1

        failures = []
        threads = [
            threading.Thread(
                target=run_client, args=(port, c, args.requests, failures)
            )
            for c in range(args.clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for f in failures:
            print(f"serve_load_smoke: {f}", file=sys.stderr)
        if failures:
            return 1

        # One more connection: stats must balance, shutdown must stick.
        expected = args.clients * args.requests
        with socket.create_connection(("127.0.0.1", port), timeout=60) as s:
            f = s.makefile("rwb")
            f.write(request_line("stats", "stats"))
            f.flush()
            stats = json.loads(f.readline())
            cache = stats.get("cache", {})
            hits, misses = cache.get("hits"), cache.get("misses")
            if hits + misses != expected:
                print(
                    f"serve_load_smoke: hits({hits}) + misses({misses}) "
                    f"!= analysis requests ({expected})",
                    file=sys.stderr,
                )
                return 1
            if stats.get("requests") != expected + 1:
                print(
                    f"serve_load_smoke: requests {stats.get('requests')} "
                    f"!= {expected + 1}",
                    file=sys.stderr,
                )
                return 1
            if stats.get("inFlight", 0) < 1:
                print("serve_load_smoke: inFlight < 1", file=sys.stderr)
                return 1
            f.write(request_line("bye", "shutdown"))
            f.flush()
            bye = json.loads(f.readline())
            if bye.get("command") != "shutdown":
                print(f"serve_load_smoke: bad shutdown response: {bye}",
                      file=sys.stderr)
                return 1

        rc = proc.wait(timeout=60)
        if rc != 0:
            print(f"serve_load_smoke: server exit status {rc}",
                  file=sys.stderr)
            return 1
        print(
            f"serve_load_smoke: {args.clients} clients x {args.requests} "
            f"requests ok (hits={hits}, misses={misses})"
        )
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
