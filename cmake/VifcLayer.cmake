# vifc_add_layer(<name> SOURCES <srcs...> [DEPS <layers...>])
#
# Declares the static library for one src/<name> layer. Every layer exports
# ${PROJECT_SOURCE_DIR}/src as a PUBLIC include directory so headers are
# included as "<layer>/<Header>.h"; DEPS are PUBLIC so the link graph
# mirrors the include graph (see DESIGN.md, "Build-system DAG").
function(vifc_add_layer name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_library(vifc_${name} STATIC ${ARG_SOURCES})
  target_include_directories(vifc_${name} PUBLIC ${PROJECT_SOURCE_DIR}/src)
  target_link_libraries(vifc_${name} PRIVATE vifc_warnings)
  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(vifc_${name} PUBLIC vifc_${dep})
  endforeach()
  add_library(vifc::${name} ALIAS vifc_${name})
endfunction()
